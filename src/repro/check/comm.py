"""Static communication-graph analyzer: concolic SPMD interpretation.

The paper's compiler statically knows the PUT/GET communication pattern
of the program it generated; this module recovers that knowledge for our
SPMD programs.  A :class:`SymbolicMachine` abstractly executes a cell
program at several machine sizes — no hardware networks, no timing,
instant delivery, but byte-faithful memory and numerically identical
reductions — and records the same annotated trace the sanitizer would.
From those runs it extracts a **static communication graph** (sync-point
nodes, PUT/GET/SEND edges with symbolic partner expressions and message
count/byte closed forms in P, see :mod:`repro.check.symbolic`) and runs
scale-generic analyses the dynamic checker cannot:

``COMM-DIVERGENCE``
    group members execute different collective sequences (a deadlock at
    *any* machine size exhibiting the divergent branch), or a cell is
    stuck at a collective/RECEIVE when the symbolic run wedges;
``COMM-UNMATCHED-FLAG``
    a flag wait whose target exceeds the increments the rest of the
    program ever produces;
``COMM-OVERLAP``
    write-write or write-read footprint overlap predicted from the
    symbolic trace (``repro.check.races`` beyond the traced execution);
``COMM-STRIDE``
    a stride-transfer call site whose element skip varies within one
    run — the non-constant-stride pattern SPMD005 approximates in the
    AST, checked here against actually-issued transfers.

Findings are aggregated across machine sizes, so one report covers
P ∈ {4, 16, 64} with a single diagnostic per root cause.
"""

from __future__ import annotations

import inspect
import sys
from collections import deque
from collections.abc import Callable, Generator, Iterable, Iterator
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.check.diagnostics import (
    SEVERITY_ERROR,
    CheckReport,
    Diagnostic,
    EventRef,
)
from repro.check.symbolic import (
    DEFAULT_SAMPLES,
    ClosedForm,
    fit_closed_form,
    infer_partner_pattern,
)
from repro.core.completion import AckPolicy, AckTracker
from repro.core.errors import CommunicationError, ConfigurationError
from repro.core.flags import MAX_FLAGS_PER_PE, Flag, flag_area_end
from repro.core.stride import ElementStride
from repro.hardware.memory import WORD_BYTES
from repro.machine.config import SPARC_US_PER_FLOP
from repro.machine.machine import _combine_values
from repro.machine.program import CkptState, Group, LocalArray
from repro.network.packet import StrideSpec
from repro.trace.buffer import TraceBuffer
from repro.trace.events import EventKind, TraceEvent

__all__ = [
    "CommGraph",
    "CommRun",
    "SymbolicContext",
    "SymbolicMachine",
    "DEFAULT_SCALES",
    "STATIC_APPS",
    "UNTIMED_KINDS",
    "analyze_program",
    "analyze_app",
    "check_program",
    "kind_totals",
    "run_findings",
    "static_app_table",
    "static_params",
]

#: Machine sizes the scale-generic findings are reported over.
DEFAULT_SCALES = (4, 16, 64)

_HEAP_ALIGN = 64
_MEMORY_PER_CELL = 16 * 1024 * 1024

#: Event kinds that form communication-graph edges.
_EDGE_KINDS = {EventKind.PUT, EventKind.GET, EventKind.SEND}
#: Event kinds that form synchronization nodes.
_NODE_KINDS = {EventKind.BARRIER, EventKind.GOP, EventKind.VGOP,
               EventKind.FLAG_WAIT}
_COLLECTIVE_KINDS = {EventKind.BARRIER, EventKind.GOP, EventKind.VGOP}

_THIS_FILE = str(Path(__file__).resolve())


def _align(value: int, alignment: int) -> int:
    return (value + alignment - 1) // alignment * alignment


def _caller_site() -> tuple[str, int]:
    """(file, line) of the nearest stack frame outside this module —
    the app or runtime-library call site of a communication op."""
    frame = sys._getframe(2)
    while frame is not None and frame.f_code.co_filename == _THIS_FILE:
        frame = frame.f_back
    if frame is None:  # pragma: no cover
        return ("<unknown>", 0)
    return (frame.f_code.co_filename, frame.f_lineno)


def _rel_site(site: tuple[str, int]) -> tuple[str, int]:
    """Shorten a site path to be repo-relative when possible."""
    path, line = site
    parts = Path(path).parts
    for anchor in ("repro", "examples"):
        if anchor in parts:
            idx = len(parts) - 1 - parts[::-1].index(anchor)
            return (str(Path(*parts[idx:])), line)
    return (Path(path).name, line)


@dataclass
class _Message:
    """An in-flight two-sided message (ring-buffer entry)."""

    src: int
    data: bytes
    context: int
    serial: int

    @property
    def payload_bytes(self) -> int:
        return len(self.data)


class _SymBarrier:
    __slots__ = ("generation", "arrived", "members")

    def __init__(self, members: tuple[int, ...]) -> None:
        self.generation = 0
        self.arrived: set[int] = set()
        self.members = members


class _SymReduction:
    __slots__ = ("per_pe_generation", "slots", "results", "fetches",
                 "members", "ops")

    def __init__(self, members: tuple[int, ...]) -> None:
        self.per_pe_generation: dict[int, int] = {}
        self.slots: dict[int, dict[int, Any]] = {}
        self.results: dict[int, Any] = {}
        self.fetches: dict[int, int] = {}
        self.members = members
        self.ops: dict[int, str] = {}


class SymbolicMachine:
    """An abstract AP1000+ for concolic analysis.

    Byte-faithful per-cell memories and the exact allocation arithmetic
    of :class:`repro.machine.machine.Machine` (so symmetric addresses
    agree with a real run), but instant delivery and no hardware model:
    a PUT lands and increments flags the moment it is issued.  Every
    operation records the same :class:`TraceEvent` a sanitized real run
    would, which is what makes trace conformance checking possible.
    """

    def __init__(self, num_cells: int, *,
                 memory_per_cell: int = _MEMORY_PER_CELL,
                 trace_capacity: int | None = None) -> None:
        if num_cells < 1:
            raise ConfigurationError("need at least one cell")
        self.num_cells = num_cells
        self.memory_per_cell = memory_per_cell
        self.mem = [np.zeros(memory_per_cell, dtype=np.uint8)
                    for _ in range(num_cells)]
        self._heap_next = [_align(flag_area_end(), _HEAP_ALIGN)] * num_cells
        self._private_next = [memory_per_cell] * num_cells
        kwargs = {} if trace_capacity is None else {
            "capacity": trace_capacity}
        self.trace = TraceBuffer(num_pes=num_cells, **kwargs)
        self.world_group = Group(gid=0, members=tuple(range(num_cells)))
        self.rings: list[deque[_Message]] = [deque()
                                             for _ in range(num_cells)]
        self._serial = 0
        self._barriers: dict[int, _SymBarrier] = {}
        self._reductions: dict[int, _SymReduction] = {}
        self._registers: list[dict[int, int]] = [dict()
                                                 for _ in range(num_cells)]
        self.progress = 0
        #: pe -> ("flag_wait"|"barrier"|"reduce"|"recv"|"creg", ...details)
        self.blocked: dict[int, tuple] = {}
        #: event seq -> (file, line) call site.
        self.sites: dict[int, tuple[str, int]] = {}
        #: stride call site -> set of remote-side (items, skip) observed.
        self.stride_sites: dict[tuple[str, int], set[tuple[int, int]]] = {}
        self.results: dict[int, Any] = {}
        self.deadlocked = False

    # -- memory --------------------------------------------------------

    def alloc_array(self, pe: int, shape: int | tuple[int, ...],
                    dtype: Any, align: int = _HEAP_ALIGN) -> LocalArray:
        dtype = np.dtype(dtype)
        shape = (shape,) if isinstance(shape, int) else tuple(shape)
        nbytes = (int(np.prod(shape)) * dtype.itemsize if shape
                  else dtype.itemsize)
        nbytes = max(nbytes, dtype.itemsize)
        addr = _align(self._heap_next[pe], align)
        end = addr + nbytes
        if end > self._private_next[pe]:
            raise ConfigurationError(
                f"cell {pe} out of memory: heap would reach {end} bytes "
                f"against the private area at {self._private_next[pe]}")
        self._heap_next[pe] = _align(end, _HEAP_ALIGN)
        data = self.mem[pe][addr:addr + nbytes].view(dtype).reshape(shape)
        return LocalArray(data=data, addr=addr)

    def alloc_private(self, pe: int, nbytes: int,
                      align: int = _HEAP_ALIGN) -> LocalArray:
        if nbytes <= 0:
            raise ConfigurationError("private allocation must be non-empty")
        addr = self._private_next[pe] - nbytes
        addr -= addr % align
        if addr < self._heap_next[pe]:
            raise ConfigurationError(
                f"cell {pe} out of memory: private area would reach {addr} "
                f"against the heap at {self._heap_next[pe]}")
        self._private_next[pe] = addr
        return LocalArray(data=self.mem[pe][addr:addr + nbytes], addr=addr)

    # -- flags ---------------------------------------------------------

    def flag_value(self, pe: int, addr: int) -> int:
        return int(self.mem[pe][addr:addr + WORD_BYTES]
                   .view(np.int32)[0])

    def flag_add(self, pe: int, addr: int, delta: int = 1) -> None:
        view = self.mem[pe][addr:addr + WORD_BYTES].view(np.int32)
        view[0] += delta

    def flag_write(self, pe: int, addr: int, value: int) -> None:
        self.mem[pe][addr:addr + WORD_BYTES].view(np.int32)[0] = value

    # -- byte transfer (the DMA engines, minus time) -------------------

    def _gather(self, pe: int, addr: int, spec: StrideSpec) -> bytes:
        if spec.total_bytes == 0:
            return b""
        mem = self.mem[pe]
        if spec.count == 1 or spec.skip == spec.item_size:
            span = spec.item_size * spec.count
            self._check_span(pe, addr, span)
            return mem[addr:addr + span].tobytes()
        chunks = []
        for i in range(spec.count):
            start = addr + i * spec.skip
            self._check_span(pe, start, spec.item_size)
            chunks.append(mem[start:start + spec.item_size].tobytes())
        return b"".join(chunks)

    def _scatter(self, pe: int, addr: int, spec: StrideSpec,
                 data: bytes) -> None:
        if spec.total_bytes == 0:
            return
        mem = self.mem[pe]
        if spec.count == 1 or spec.skip == spec.item_size:
            span = spec.item_size * spec.count
            self._check_span(pe, addr, span)
            mem[addr:addr + span] = np.frombuffer(data[:span],
                                                  dtype=np.uint8)
            return
        for i in range(spec.count):
            start = addr + i * spec.skip
            lo = i * spec.item_size
            self._check_span(pe, start, spec.item_size)
            mem[start:start + spec.item_size] = np.frombuffer(
                data[lo:lo + spec.item_size], dtype=np.uint8)

    def _check_span(self, pe: int, addr: int, nbytes: int) -> None:
        if addr < 0 or addr + nbytes > self.memory_per_cell:
            raise CommunicationError(
                f"transfer touches [{addr}, {addr + nbytes}) outside cell "
                f"{pe}'s {self.memory_per_cell}-byte memory")

    # -- synchronization state machines --------------------------------

    def note_progress(self) -> None:
        self.progress += 1

    def barrier_arrive(self, group: Group, pe: int) -> int:
        state = self._barriers.get(group.gid)
        if state is None:
            state = _SymBarrier(group.members)
            self._barriers[group.gid] = state
        if pe in state.arrived:
            raise CommunicationError(
                f"cell {pe} arrived twice at barrier of group {group.gid}")
        if pe not in group:
            raise CommunicationError(
                f"cell {pe} synchronizing with group {group.gid} it does "
                "not belong to")
        state.arrived.add(pe)
        generation = state.generation
        if all(m in state.arrived for m in state.members):
            state.arrived.clear()
            state.generation += 1
            self.progress += 1
        return generation

    def barrier_passed(self, gid: int, generation: int) -> bool:
        state = self._barriers.get(gid)
        return state is not None and state.generation > generation

    def reduce(self, group: Group, pe: int, value: Any,
               op: str) -> Generator[None, None, Any]:
        if pe not in group:
            raise CommunicationError(
                f"cell {pe} reducing with group {group.gid} it does not "
                "belong to")
        state = self._reductions.get(group.gid)
        if state is None:
            state = _SymReduction(group.members)
            self._reductions[group.gid] = state
        generation = state.per_pe_generation.get(pe, 0)
        state.per_pe_generation[pe] = generation + 1
        slot = state.slots.setdefault(generation, {})
        if pe in slot:
            raise CommunicationError(
                f"cell {pe} contributed twice to reduction {generation} "
                f"of group {group.gid}")
        slot[pe] = value
        state.ops.setdefault(generation, op)
        if all(m in slot for m in state.members):
            # Combine in member order, exactly as the real machine does,
            # so data-dependent loops take identical trip counts.
            contributions = [slot[m] for m in state.members]
            op_used = state.ops.pop(generation)
            result = contributions[0]
            for contribution in contributions[1:]:
                result = _combine_values(op_used, result, contribution)
            state.results[generation] = result
            state.fetches[generation] = 0
            del state.slots[generation]
            self.progress += 1
        while generation not in state.results:
            self.blocked[pe] = ("reduce", group.gid, group.members)
            yield
        self.blocked.pop(pe, None)
        self.note_progress()
        result = state.results[generation]
        state.fetches[generation] += 1
        if state.fetches[generation] >= len(state.members):
            del state.results[generation]
            del state.fetches[generation]
        return result

    # -- two-sided messages --------------------------------------------

    def deposit(self, dst: int, message: _Message) -> None:
        self.rings[dst].append(message)
        self.note_progress()

    def take(self, pe: int, src: int | None,
             context: int | None) -> _Message | None:
        ring = self.rings[pe]
        for i, msg in enumerate(ring):
            if src is not None and msg.src != src:
                continue
            if context is not None and msg.context != context:
                continue
            del ring[i]
            return msg
        return None

    def next_serial(self) -> int:
        self._serial += 1
        return self._serial

    # -- program execution ---------------------------------------------

    def run(self, program: Callable[..., Any],
            **params: Any) -> dict[int, Any]:
        """Concolically execute ``program`` on every cell.

        Round-robin scheduling in ascending pe order, one resumption per
        pass; a pass in which no cell makes progress and none finishes
        is a wedged machine — recorded (with each cell's blocked state)
        rather than raised, because a deadlock is a *finding* here.
        """
        contexts = [SymbolicContext(self, pe)
                    for pe in range(self.num_cells)]
        generators: dict[int, Any] = {}
        for pe, ctx in enumerate(contexts):
            outcome = program(ctx, **params)
            if inspect.isgenerator(outcome):
                generators[pe] = outcome
            else:
                self.results[pe] = outcome
        stalled = 0
        while generators:
            before = self.progress
            finished: list[int] = []
            for pe in sorted(generators):
                try:
                    next(generators[pe])
                except StopIteration as stop:
                    self.results[pe] = stop.value
                    finished.append(pe)
            for pe in finished:
                del generators[pe]
            if finished or self.progress != before:
                stalled = 0
            else:
                stalled += 1
            if stalled >= 2:
                self.deadlocked = True
                break
        return self.results


class SymbolicContext:
    """The :class:`~repro.machine.program.CellContext` duck type the
    analyzer hands to programs.

    Event emission mirrors the real context field for field, and byte
    footprints are always annotated (the static analyzer *is* the
    sanitizer's compile-time twin).  Write-through page binding is the
    one unsupported operation: its traffic depends on page-residency
    state the static model deliberately leaves out.
    """

    def __init__(self, machine: SymbolicMachine, pe: int) -> None:
        self.machine = machine
        self.pe = pe
        self._next_flag = 0
        self.ack_flag = self.alloc_flag()
        self.acks = AckTracker(self.ack_flag, policy=AckPolicy.EVERY_PUT)
        self._wt_flag = self.alloc_flag()

    # -- introspection -------------------------------------------------

    @property
    def num_cells(self) -> int:
        return self.machine.num_cells

    @property
    def world(self) -> Group:
        return self.machine.world_group

    def _trace(self, kind: EventKind, **fields: Any) -> TraceEvent:
        ev = self.machine.trace.record(
            TraceEvent(kind, pe=self.pe, **fields))
        self.machine.sites[ev.seq] = _caller_site()
        return ev

    # -- memory and flags ----------------------------------------------

    def alloc(self, shape: int | tuple[int, ...],
              dtype: Any = np.float64) -> LocalArray:
        return self.machine.alloc_array(self.pe, shape, dtype)

    def alloc_flag(self) -> Flag:
        if self._next_flag >= MAX_FLAGS_PER_PE:
            raise ConfigurationError("flag area exhausted")
        flag = Flag(index=self._next_flag, owner=self.pe)
        self._next_flag += 1
        return flag

    def flag_read(self, flag: Flag) -> int:
        return self.machine.flag_value(self.pe, flag.addr)

    def flag_clear(self, flag: Flag) -> None:
        self.machine.flag_write(self.pe, flag.addr, 0)

    # -- computation charging ------------------------------------------

    def compute(self, work_us: float) -> None:
        if work_us < 0:
            raise ConfigurationError("work must be non-negative")
        if work_us:
            self._trace(EventKind.COMPUTE, work=float(work_us))

    def compute_flops(self, flops: float) -> None:
        self.compute(flops * SPARC_US_PER_FLOP)

    def rtsys(self, work_us: float) -> None:
        if work_us < 0:
            raise ConfigurationError("work must be non-negative")
        if work_us:
            self._trace(EventKind.RTSYS, work=float(work_us))

    def phase(self, label: str) -> None:
        self._trace(EventKind.PHASE,
                    flag=self.machine.trace.phase_id(str(label)))

    # -- PUT / GET -----------------------------------------------------

    def _annotate(self, ev: TraceEvent, kind: EventKind, raddr: int,
                  laddr: int, send_spec: StrideSpec,
                  recv_spec: StrideSpec) -> None:
        if kind is EventKind.PUT:
            rspec, lspec = recv_spec, send_spec
        else:
            rspec, lspec = send_spec, recv_spec
        if rspec.total_bytes:
            ev.raddr = raddr
            ev.rchunk = rspec.item_size
            ev.rcount = rspec.count
            ev.rstep = rspec.skip
        if lspec.total_bytes:
            ev.laddr = laddr
            ev.lchunk = lspec.item_size
            ev.lcount = lspec.count
            ev.lstep = lspec.skip

    def _note_stride(self, remote: ElementStride) -> None:
        site = _caller_site()
        self.machine.stride_sites.setdefault(site, set()).add(
            (remote.items_per_block, remote.skip))

    def put(self, dst: int, dest: LocalArray, src: LocalArray, *,
            count: int | None = None, dest_offset: int = 0,
            src_offset: int = 0, send_flag: Flag | None = None,
            recv_flag: Flag | None = None, ack: bool = False) -> None:
        if count is None:
            count = src.size - src_offset
        nbytes = count * src.itemsize
        self._check_transfer(dest, src, dest_offset, src_offset, count)
        raddr = dest.element_addr(dest_offset)
        laddr = src.element_addr(src_offset)
        spec = StrideSpec.contiguous(nbytes)
        ev = self._trace(
            EventKind.PUT, partner=dst, size=nbytes,
            send_flag=send_flag.id_on(self.pe) if send_flag else 0,
            recv_flag=recv_flag.id_on(dst) if recv_flag else 0,
        )
        self._annotate(ev, EventKind.PUT, raddr, laddr, spec, spec)
        self._execute_put(dst, raddr, laddr, spec, spec,
                          send_flag, recv_flag)
        if ack and self.acks.record_put(dst):
            self.ack_get(dst)

    def put_stride(self, dst: int, dest: LocalArray, src: LocalArray,
                   send_stride: ElementStride, recv_stride: ElementStride, *,
                   dest_offset: int = 0, src_offset: int = 0,
                   send_flag: Flag | None = None,
                   recv_flag: Flag | None = None, ack: bool = False) -> None:
        if send_stride.total_elements != recv_stride.total_elements:
            raise CommunicationError(
                f"stride element counts disagree: send moves "
                f"{send_stride.total_elements}, recv expects "
                f"{recv_stride.total_elements}")
        self._note_stride(recv_stride)
        nbytes = send_stride.total_elements * src.itemsize
        raddr = dest.element_addr(dest_offset)
        laddr = src.element_addr(src_offset)
        send_spec = send_stride.to_bytes(src.itemsize)
        recv_spec = recv_stride.to_bytes(dest.itemsize)
        ev = self._trace(
            EventKind.PUT, partner=dst, size=nbytes, stride=True,
            send_flag=send_flag.id_on(self.pe) if send_flag else 0,
            recv_flag=recv_flag.id_on(dst) if recv_flag else 0,
        )
        self._annotate(ev, EventKind.PUT, raddr, laddr, send_spec,
                       recv_spec)
        self._execute_put(dst, raddr, laddr, send_spec, recv_spec,
                          send_flag, recv_flag)
        if ack and self.acks.record_put(dst):
            self.ack_get(dst)

    def _execute_put(self, dst: int, raddr: int, laddr: int,
                     send_spec: StrideSpec, recv_spec: StrideSpec,
                     send_flag: Flag | None,
                     recv_flag: Flag | None) -> None:
        data = self.machine._gather(self.pe, laddr, send_spec)
        self.machine._scatter(dst, raddr, recv_spec, data)
        if send_flag is not None:
            self.machine.flag_add(self.pe, send_flag.addr)
        if recv_flag is not None:
            self.machine.flag_add(dst, recv_flag.addr)
        self.machine.note_progress()

    def get(self, src_pe: int, remote: LocalArray, local: LocalArray, *,
            count: int | None = None, remote_offset: int = 0,
            local_offset: int = 0, send_flag: Flag | None = None,
            recv_flag: Flag | None = None) -> None:
        if count is None:
            count = local.size - local_offset
        nbytes = count * local.itemsize
        self._check_transfer(local, remote, local_offset, remote_offset,
                             count)
        raddr = remote.element_addr(remote_offset)
        laddr = local.element_addr(local_offset)
        spec = StrideSpec.contiguous(nbytes)
        ev = self._trace(
            EventKind.GET, partner=src_pe, size=nbytes,
            send_flag=send_flag.id_on(self.pe) if send_flag else 0,
            recv_flag=recv_flag.id_on(self.pe) if recv_flag else 0,
        )
        self._annotate(ev, EventKind.GET, raddr, laddr, spec, spec)
        self._execute_get(src_pe, raddr, laddr, spec, spec,
                          send_flag, recv_flag)

    def get_stride(self, src_pe: int, remote: LocalArray, local: LocalArray,
                   remote_stride: ElementStride,
                   local_stride: ElementStride, *,
                   remote_offset: int = 0, local_offset: int = 0,
                   send_flag: Flag | None = None,
                   recv_flag: Flag | None = None) -> None:
        if remote_stride.total_elements != local_stride.total_elements:
            raise CommunicationError(
                f"stride element counts disagree: remote provides "
                f"{remote_stride.total_elements}, local expects "
                f"{local_stride.total_elements}")
        self._note_stride(remote_stride)
        nbytes = remote_stride.total_elements * local.itemsize
        raddr = remote.element_addr(remote_offset)
        laddr = local.element_addr(local_offset)
        send_spec = remote_stride.to_bytes(remote.itemsize)
        recv_spec = local_stride.to_bytes(local.itemsize)
        ev = self._trace(
            EventKind.GET, partner=src_pe, size=nbytes, stride=True,
            send_flag=send_flag.id_on(self.pe) if send_flag else 0,
            recv_flag=recv_flag.id_on(self.pe) if recv_flag else 0,
        )
        self._annotate(ev, EventKind.GET, raddr, laddr, send_spec,
                       recv_spec)
        self._execute_get(src_pe, raddr, laddr, send_spec, recv_spec,
                          send_flag, recv_flag)

    def _execute_get(self, src_pe: int, raddr: int, laddr: int,
                     send_spec: StrideSpec, recv_spec: StrideSpec,
                     send_flag: Flag | None,
                     recv_flag: Flag | None) -> None:
        data = self.machine._gather(src_pe, raddr, send_spec)
        self.machine._scatter(self.pe, laddr, recv_spec, data)
        if send_flag is not None:
            self.machine.flag_add(self.pe, send_flag.addr)
        if recv_flag is not None:
            self.machine.flag_add(self.pe, recv_flag.addr)
        self.machine.note_progress()

    def _check_transfer(self, dest: LocalArray, src: LocalArray,
                        dest_offset: int, src_offset: int,
                        count: int) -> None:
        if count < 0:
            raise CommunicationError("negative transfer count")
        if dest.itemsize != src.itemsize:
            raise CommunicationError(
                f"transfer between arrays of different item sizes "
                f"({src.itemsize} vs {dest.itemsize})")
        if src_offset + count > src.size or dest_offset + count > dest.size:
            raise CommunicationError("transfer exceeds array bounds")

    # -- acknowledge idiom and completion ------------------------------

    def ack_get(self, dst: int) -> None:
        self._trace(
            EventKind.GET, partner=dst, size=0, is_ack=True,
            recv_flag=self.ack_flag.id_on(self.pe),
        )
        self.machine.flag_add(self.pe, self.ack_flag.addr)
        self.machine.note_progress()

    def finish_puts(self) -> Iterator[None]:
        for dst in self.acks.destinations_to_ack():
            self.ack_get(dst)
        yield from self.flag_wait(self.ack_flag, self.acks.expected_acks)
        self.acks.reset_phase()

    def flag_wait(self, flag: Flag, target: int) -> Iterator[None]:
        self._trace(EventKind.FLAG_WAIT, flag=flag.id_on(self.pe),
                    target=int(target))
        machine = self.machine
        while machine.flag_value(self.pe, flag.addr) < target:
            machine.blocked[self.pe] = (
                "flag_wait", flag.id_on(self.pe), int(target),
                machine.flag_value(self.pe, flag.addr))
            yield
        machine.blocked.pop(self.pe, None)
        machine.note_progress()

    # -- SEND / RECEIVE ------------------------------------------------

    def send(self, dst: int, data: np.ndarray | bytes, *,
             context: int = 0) -> None:
        payload = (data.tobytes() if isinstance(data, np.ndarray)
                   else bytes(data))
        serial = self.machine.next_serial()
        self._trace(EventKind.SEND, partner=dst, size=len(payload),
                    msg_id=serial)
        self.machine.deposit(dst, _Message(src=self.pe, data=payload,
                                           context=context, serial=serial))

    def recv(self, src: int | None = None, context: int | None = None,
             in_place: bool = False) -> Generator[None, None, _Message]:
        machine = self.machine
        while True:
            packet = machine.take(self.pe, src, context)
            if packet is not None:
                break
            machine.blocked[self.pe] = ("recv", src, context)
            yield
        machine.blocked.pop(self.pe, None)
        machine.note_progress()
        self._trace(EventKind.RECV, partner=packet.src,
                    size=packet.payload_bytes, msg_id=packet.serial)
        return packet

    def recv_array(self, dtype: Any, src: int | None = None,
                   context: int | None = None
                   ) -> Generator[None, None, np.ndarray]:
        packet = yield from self.recv(src=src, context=context)
        return np.frombuffer(packet.data or b"", dtype=dtype).copy()

    # -- barrier and reductions ----------------------------------------

    def make_group(self, members: Iterable[int]) -> Group:
        key = tuple(sorted(set(int(m) for m in members)))
        gid = self.machine.trace.groups.intern(key)
        return Group(gid=gid, members=key)

    def barrier(self, group: Group | None = None) -> Iterator[None]:
        grp = group or self.world
        self._trace(EventKind.BARRIER, group=grp.gid, group_size=grp.size)
        machine = self.machine
        generation = machine.barrier_arrive(grp, self.pe)
        while not machine.barrier_passed(grp.gid, generation):
            machine.blocked[self.pe] = ("barrier", grp.gid, grp.members)
            yield
        machine.blocked.pop(self.pe, None)
        machine.note_progress()

    def gop(self, value: float, op: str = "sum",
            group: Group | None = None) -> Generator[None, None, float]:
        grp = group or self.world
        self._trace(EventKind.GOP, group=grp.gid, group_size=grp.size,
                    size=8)
        result = yield from self.machine.reduce(grp, self.pe,
                                                float(value), op)
        return result

    def vgop(self, vector: np.ndarray, op: str = "sum",
             group: Group | None = None
             ) -> Generator[None, None, np.ndarray]:
        grp = group or self.world
        self._trace(EventKind.VGOP, group=grp.gid, group_size=grp.size,
                    size=int(vector.nbytes))
        result = yield from self.machine.reduce(
            grp, self.pe, np.array(vector, copy=True), op)
        return np.array(result, copy=True)

    # -- shared memory and communication registers ---------------------

    def remote_store_word(self, dst: int, array: LocalArray,
                          offset: int, value: float) -> None:
        scratch = np.array([value], dtype=array.dtype)
        raddr = array.element_addr(offset)
        ev = self._trace(EventKind.REMOTE_STORE, partner=dst,
                         size=scratch.nbytes)
        ev.raddr = raddr
        ev.rchunk = scratch.nbytes
        ev.rcount = 1
        ev.rstep = max(scratch.nbytes, 1)
        self.machine._scatter(dst, raddr,
                              StrideSpec.contiguous(scratch.nbytes),
                              scratch.tobytes())
        self.machine.note_progress()

    def remote_load_word(self, src_pe: int, array: LocalArray,
                         offset: int) -> float:
        itemsize = array.itemsize
        raddr = array.element_addr(offset)
        ev = self._trace(EventKind.REMOTE_LOAD, partner=src_pe,
                         size=itemsize)
        ev.raddr = raddr
        ev.rchunk = itemsize
        ev.rcount = 1
        ev.rstep = max(itemsize, 1)
        raw = self.machine._gather(src_pe, raddr,
                                   StrideSpec.contiguous(itemsize))
        self.machine.note_progress()
        return np.frombuffer(raw, dtype=array.dtype)[0]

    def creg_store(self, dst: int, index: int, value: int) -> None:
        self._trace(EventKind.CREG_STORE, partner=dst, size=4)
        self.machine._registers[dst][index] = value
        self.machine.note_progress()

    def creg_load(self, index: int) -> Generator[None, None, int]:
        self._trace(EventKind.CREG_LOAD, partner=self.pe, size=4)
        machine = self.machine
        while index not in machine._registers[self.pe]:
            machine.blocked[self.pe] = ("creg_load", index)
            yield
        machine.blocked.pop(self.pe, None)
        machine.note_progress()
        return machine._registers[self.pe].pop(index)

    # -- checkpoint sites ----------------------------------------------

    def ckpt_state(self, **defaults: Any) -> CkptState:
        """The static model always runs fresh (no snapshots to resume)."""
        return CkptState(fresh=True, fields=dict(defaults))

    def checkpoint(self, *, barrier: bool = False,
                   group: Group | None = None) -> Iterator[None]:
        """Checkpoint sites are trace-invisible when disarmed, and the
        static model never arms a gate — only the subsumed barrier (if
        any) is executed and traced, exactly as on the real machine."""
        if barrier:
            yield from self.barrier(group)

    # -- unsupported ---------------------------------------------------

    def wt_bind(self, home: int, array: LocalArray) -> Iterator[None]:
        raise ConfigurationError(
            "write-through page binding depends on page-residency state "
            "outside the static communication model")

    def wt_refresh(self, handle: Any, *, initial: bool = False
                   ) -> Iterator[None]:
        raise ConfigurationError(
            "write-through page refresh depends on page-residency state "
            "outside the static communication model")


# ----------------------------------------------------------------------
# Analysis results
# ----------------------------------------------------------------------

@dataclass
class CommRun:
    """One concolic execution at a fixed machine size."""

    subject: str
    num_cells: int
    params: dict[str, Any]
    machine: SymbolicMachine

    @property
    def trace(self) -> TraceBuffer:
        return self.machine.trace

    @property
    def deadlocked(self) -> bool:
        return self.machine.deadlocked

    @property
    def results(self) -> dict[int, Any]:
        return self.machine.results

    def site_of(self, seq: int) -> tuple[str, int] | None:
        site = self.machine.sites.get(seq)
        return _rel_site(site) if site is not None else None

    def kind_totals(self) -> dict[str, tuple[int, int]]:
        return kind_totals(self.trace)


#: Timing/annotation records, not communication; both the graph and the
#: conformance comparison skip them.
UNTIMED_KINDS = frozenset({EventKind.COMPUTE, EventKind.RTSYS,
                           EventKind.PHASE})


def kind_totals(trace: TraceBuffer) -> dict[str, tuple[int, int]]:
    """(count, bytes) per event-kind label over a whole trace.

    COMPUTE/RTSYS/PHASE are excluded; stride transfers are labelled
    ``PUTS``/``GETS`` as in the paper's Table 3, zero-byte acknowledge
    GETs as ``ACK``.
    """
    totals: dict[str, list[int]] = {}
    for pe in range(trace.num_pes):
        for ev in trace.events_for(pe):
            if ev.kind in UNTIMED_KINDS:
                continue
            label = _kind_label(ev)
            bucket = totals.setdefault(label, [0, 0])
            bucket[0] += 1
            bucket[1] += ev.size
    return {label: (c, b) for label, (c, b) in totals.items()}


def _kind_label(ev: TraceEvent) -> str:
    if ev.kind is EventKind.PUT and ev.stride:
        return "PUTS"
    if ev.kind is EventKind.GET and ev.stride:
        return "GETS"
    if ev.kind is EventKind.GET and ev.is_ack:
        return "ACK"
    return ev.kind.name


def analyze_program(program: Callable[..., Any], num_cells: int,
                    params: dict[str, Any] | None = None, *,
                    subject: str = "program",
                    memory_per_cell: int = _MEMORY_PER_CELL) -> CommRun:
    """Concolically execute ``program`` at one machine size."""
    machine = SymbolicMachine(num_cells, memory_per_cell=memory_per_cell)
    machine.run(program, **(params or {}))
    return CommRun(subject=subject, num_cells=num_cells,
                   params=dict(params or {}), machine=machine)


# ----------------------------------------------------------------------
# The static communication graph
# ----------------------------------------------------------------------

@dataclass
class _EdgeObs:
    count: int = 0
    nbytes: int = 0
    pairs: set[tuple[int, int]] = field(default_factory=set)


class CommGraph:
    """The extracted communication graph, generalized over P.

    Nodes are synchronization points (barrier / gop / vgop / flag wait
    call sites), edges are PUT/GET/SEND call sites annotated with a
    symbolic partner expression and closed forms for message count and
    byte volume as functions of P.
    """

    def __init__(self, subject: str) -> None:
        self.subject = subject
        #: (label, file, line) -> {P: observation}
        self.edges: dict[tuple[str, str, int], dict[int, _EdgeObs]] = {}
        #: (label, file, line) -> {P: count}
        self.nodes: dict[tuple[str, str, int], dict[int, int]] = {}
        #: {P: {label: (count, bytes)}}
        self.totals: dict[int, dict[str, tuple[int, int]]] = {}

    def add_run(self, run: CommRun) -> None:
        p = run.num_cells
        self.totals[p] = run.kind_totals()
        for pe in range(run.num_cells):
            for ev in run.trace.events_for(pe):
                site = run.site_of(ev.seq)
                if site is None:
                    continue
                key = (_kind_label(ev), site[0], site[1])
                if ev.kind in _EDGE_KINDS:
                    obs = self.edges.setdefault(key, {}).setdefault(
                        p, _EdgeObs())
                    obs.count += 1
                    obs.nbytes += ev.size
                    obs.pairs.add((pe, ev.partner))
                elif ev.kind in _NODE_KINDS:
                    counts = self.nodes.setdefault(key, {})
                    counts[p] = counts.get(p, 0) + 1

    @property
    def sampled(self) -> tuple[int, ...]:
        return tuple(sorted(self.totals))

    def total_forms(self, label: str) -> tuple[ClosedForm, ClosedForm]:
        """(count closed form, bytes closed form) for one event label."""
        counts = {p: kinds.get(label, (0, 0))[0]
                  for p, kinds in self.totals.items()}
        nbytes = {p: kinds.get(label, (0, 0))[1]
                  for p, kinds in self.totals.items()}
        return fit_closed_form(counts), fit_closed_form(nbytes)

    def labels(self) -> list[str]:
        return sorted({label for kinds in self.totals.values()
                       for label in kinds})

    def summary(self, max_edges: int = 24) -> list[str]:
        """Human-readable graph description for report notes and docs."""
        lines: list[str] = []
        for label in self.labels():
            count_form, bytes_form = self.total_forms(label)
            lines.append(
                f"{label}: count = {count_form.expression}, "
                f"bytes = {bytes_form.expression}")
        edge_keys = sorted(self.edges)
        for key in edge_keys[:max_edges]:
            label, file, line = key
            per_p = self.edges[key]
            pattern = infer_partner_pattern(
                {p: sorted(obs.pairs) for p, obs in per_p.items()})
            counts = {p: obs.count for p, obs in per_p.items()}
            form = fit_closed_form(counts)
            lines.append(
                f"edge {label} {file}:{line}: partner {pattern}, "
                f"count = {form.expression}")
        if len(edge_keys) > max_edges:
            lines.append(
                f"... {len(edge_keys) - max_edges} more edge sites")
        for key in sorted(self.nodes):
            label, file, line = key
            form = fit_closed_form(
                {p: c for p, c in self.nodes[key].items()})
            lines.append(
                f"sync {label} {file}:{line}: count = {form.expression}")
        return lines


# ----------------------------------------------------------------------
# Scale-generic analyses over one run
# ----------------------------------------------------------------------

def _group_desc(members: tuple[int, ...], num_cells: int) -> str:
    if len(members) == num_cells:
        return "all cells"
    if len(members) <= 6:
        return f"cells {list(members)}"
    return (f"{len(members)} cells [{members[0]}, {members[1]}, ... "
            f"{members[-1]}]")


def _divergence_findings(run: CommRun) -> list[Diagnostic]:
    """Compare every group member's collective subsequence."""
    sequences: dict[tuple[int, ...],
                    dict[int, list[TraceEvent]]] = {}
    for pe in range(run.num_cells):
        for ev in run.trace.events_for(pe):
            if ev.kind not in _COLLECTIVE_KINDS:
                continue
            members = run.trace.groups.members(ev.group)
            sequences.setdefault(members, {}).setdefault(
                pe, []).append(ev)
    out: list[Diagnostic] = []
    for members, per_member in sorted(sequences.items()):
        signature = {
            pe: [(ev.kind.name, ev.size) for ev in per_member.get(pe, [])]
            for pe in members
        }
        reference_pe = members[0]
        reference = signature[reference_pe]
        for pe in members[1:]:
            if signature[pe] == reference:
                continue
            mine = signature[pe]
            upto = min(len(reference), len(mine))
            pos = next((i for i in range(upto)
                        if reference[i] != mine[i]), upto)
            if pos < upto:
                what = (f"at collective #{pos} cell {reference_pe} "
                        f"issues {reference[pos][0]} while cell {pe} "
                        f"issues {mine[pos][0]}")
            else:
                what = (f"cell {reference_pe} issues {len(reference)} "
                        f"collectives but cell {pe} issues {len(mine)}")
            events = []
            for who in (reference_pe, pe):
                evs = per_member.get(who, [])
                if pos < len(evs):
                    events.append(EventRef(pe=who, seq=evs[pos].seq,
                                           kind=evs[pos].kind.name))
            site = None
            for ref in events:
                site = run.site_of(ref.seq)
                if site is not None:
                    break
            out.append(Diagnostic(
                code="COMM-DIVERGENCE",
                severity=SEVERITY_ERROR,
                message=(
                    f"collective sequences diverge within "
                    f"{_group_desc(members, run.num_cells)}: {what}"),
                events=tuple(events),
                file=site[0] if site else None,
                line=site[1] if site else None,
            ))
            break  # one finding per group
    return out


def _blocked_findings(run: CommRun,
                      have_divergence: bool) -> list[Diagnostic]:
    """Map the blocked states of a wedged machine onto findings."""
    if not run.deadlocked:
        return []
    out: list[Diagnostic] = []
    flag_cells = [(pe, state) for pe, state in
                  sorted(run.machine.blocked.items())
                  if state[0] == "flag_wait"]
    for pe, (_, flag_id, target, current) in flag_cells:
        ref: tuple[EventRef, ...] = ()
        site = None
        for ev in reversed(list(run.trace.events_for(pe))):
            if ev.kind is EventKind.FLAG_WAIT and ev.flag == flag_id:
                ref = (EventRef(pe=pe, seq=ev.seq, kind=ev.kind.name),)
                site = run.site_of(ev.seq)
                break
        out.append(Diagnostic(
            code="COMM-UNMATCHED-FLAG",
            severity=SEVERITY_ERROR,
            message=(
                f"cell {pe} waits for flag {flag_id} to reach {target} "
                f"but the program only ever produces {current} "
                f"increment(s)"),
            events=ref,
            home=pe,
            file=site[0] if site else None,
            line=site[1] if site else None,
        ))
    by_shape: dict[tuple, list[int]] = {}
    for pe, state in sorted(run.machine.blocked.items()):
        if state[0] in ("barrier", "reduce", "recv", "creg_load"):
            by_shape.setdefault(state, []).append(pe)
    for state, cells in sorted(by_shape.items()):
        if state[0] in ("barrier", "reduce") and have_divergence:
            continue  # the divergence finding names the root cause
        if state[0] in ("barrier", "reduce"):
            members = state[2]
            waiting = _group_desc(tuple(cells), run.num_cells)
            what = (f"{waiting} deadlock at a {state[0]} of "
                    f"{_group_desc(members, run.num_cells)} that the "
                    f"remaining members never join")
        elif state[0] == "recv":
            src = "any cell" if state[1] is None else f"cell {state[1]}"
            what = (f"{_group_desc(tuple(cells), run.num_cells)} "
                    f"deadlock in RECEIVE from {src} "
                    f"(context={state[2]}) with no matching SEND")
        else:
            what = (f"{_group_desc(tuple(cells), run.num_cells)} "
                    f"deadlock loading communication register "
                    f"{state[1]} that is never stored")
        out.append(Diagnostic(
            code="COMM-DIVERGENCE",
            severity=SEVERITY_ERROR,
            message=what,
            home=cells[0],
        ))
    if not out and not have_divergence:
        out.append(Diagnostic(
            code="COMM-DIVERGENCE",
            severity=SEVERITY_ERROR,
            message="symbolic execution wedged with no runnable cell",
        ))
    return out


def _overlap_findings(run: CommRun, subject: str) -> list[Diagnostic]:
    """Race-candidate footprints on the predicted trace."""
    from repro.check.hb import build_happens_before
    from repro.check.races import race_report

    try:
        hb = build_happens_before(run.trace)
        races = race_report(hb, subject)
    except Exception as exc:  # pragma: no cover - defensive
        return [Diagnostic(
            code="COMM-OVERLAP",
            severity=SEVERITY_ERROR,
            message=f"footprint analysis failed on predicted trace: "
                    f"{exc}")]
    out = []
    for diag in races.diagnostics:
        if not diag.code.startswith("RACE-"):
            continue
        out.append(Diagnostic(
            code="COMM-OVERLAP",
            severity=diag.severity,
            message=f"predicted {diag.code}: {diag.message}",
            events=diag.events,
            home=diag.home,
            addr_lo=diag.addr_lo,
            addr_hi=diag.addr_hi,
        ))
    return out


def _stride_findings(run: CommRun) -> list[Diagnostic]:
    out = []
    for site, shapes in sorted(run.machine.stride_sites.items()):
        skips = sorted({skip for _, skip in shapes})
        if len(skips) <= 1:
            continue
        file, line = _rel_site(site)
        out.append(Diagnostic(
            code="COMM-STRIDE",
            severity=SEVERITY_ERROR,
            message=(
                f"stride transfers issued here use {len(skips)} distinct "
                f"element skips {skips}; the 1-D hardware stride engine "
                f"needs one constant descriptor per transfer pattern"),
            file=file,
            line=line,
        ))
    return out


def run_findings(run: CommRun, subject: str) -> list[Diagnostic]:
    """All scale-generic findings for one concolic execution."""
    findings = _divergence_findings(run)
    findings.extend(_blocked_findings(run, bool(findings)))
    findings.extend(_overlap_findings(run, subject))
    findings.extend(_stride_findings(run))
    return findings


def _merge_findings(per_scale: list[tuple[int, Diagnostic]]
                    ) -> list[Diagnostic]:
    """Collapse per-P findings that share a root cause into one
    diagnostic listing every machine size that exhibits it."""
    grouped: dict[tuple, tuple[Diagnostic, list[int]]] = {}
    for p, diag in per_scale:
        key = (diag.code, diag.file, diag.line, diag.home,
               diag.addr_lo, diag.addr_hi)
        if key in grouped:
            grouped[key][1].append(p)
        else:
            grouped[key] = (diag, [p])
    out = []
    for diag, scales in grouped.values():
        at = ", ".join(str(p) for p in sorted(set(scales)))
        out.append(Diagnostic(
            code=diag.code,
            severity=diag.severity,
            message=f"{diag.message} (at P={at})",
            events=diag.events,
            home=diag.home,
            addr_lo=diag.addr_lo,
            addr_hi=diag.addr_hi,
            file=diag.file,
            line=diag.line,
        ))
    return out


def check_program(program: Callable[..., Any], scales: tuple[int, ...],
                  params: dict[str, Any] | None = None, *,
                  subject: str = "program",
                  memory_per_cell: int = _MEMORY_PER_CELL) -> CheckReport:
    """Scale-generic findings for one cell program.

    Concolically executes at every machine size in ``scales`` and merges
    findings that share a root cause into one diagnostic naming all the
    sizes that exhibit it — the entry point for checking arbitrary
    programs (the seeded-bug fixtures use it)."""
    per_scale: list[tuple[int, Diagnostic]] = []
    events = deadlocks = 0
    sizes = sorted(set(scales))
    for p in sizes:
        run = analyze_program(program, p, params, subject=subject,
                              memory_per_cell=memory_per_cell)
        events += run.trace.total_events
        deadlocks += int(run.deadlocked)
        per_scale.extend((p, d) for d in run_findings(run, subject))
    report = CheckReport(subject=subject)
    report.extend(_merge_findings(per_scale))
    report.stats["static_scales"] = len(sizes)
    report.stats["static_events"] = events
    report.stats["static_deadlocks"] = deadlocks
    return report.finalize()


# ----------------------------------------------------------------------
# App drivers
# ----------------------------------------------------------------------

def static_app_table() -> dict[str, tuple[Any, dict[str, Any]]]:
    """Workload name -> (program, analysis parameters).

    Parameters are fixed across machine sizes (only P varies between
    concolic samples — the requirement for closed-form fitting) and are
    chosen small but pattern-preserving, valid at every sampled P.
    """
    from repro.apps import cg, ep, ft, latency, matmul, scg, sp, tomcatv

    return {
        "EP": (ep.program, {"log2_pairs": 13}),
        "CG": (cg.program, {"n": 256, "outer": 2, "inner": 5}),
        "FT": (ft.program, {"shape": (64, 16, 16), "iters": 2}),
        "SP": (sp.program, {"shape": (128, 12, 12), "iters": 2}),
        "TC st": (tomcatv.program,
                  {"n": 65, "iters": 2, "use_stride": True}),
        "TC no st": (tomcatv.program,
                     {"n": 65, "iters": 2, "use_stride": False}),
        "MatMul": (matmul.program, {"n": 128}),
        "SCG": (scg.program, {"m": 64, "max_iters": 40}),
        "PingPong": (latency.ping_pong_program, {"iters": 64}),
        "RingShift": (latency.ring_shift_program, {"hops": 128}),
    }


#: Names the static sweep covers (9 distinct programs; TOMCATV appears
#: with and without hardware stride, as in the paper's tables).
STATIC_APPS = ("EP", "CG", "FT", "SP", "TC st", "TC no st", "MatMul",
               "SCG", "PingPong", "RingShift")


def static_params(name: str) -> tuple[Any, dict[str, Any]]:
    table = static_app_table()
    try:
        return table[name]
    except KeyError:
        raise ConfigurationError(
            f"no static analysis entry for app {name!r}; choose from "
            f"{list(STATIC_APPS)}") from None


def analyze_app(name: str, *,
                scales: tuple[int, ...] = DEFAULT_SCALES,
                samples: tuple[int, ...] = DEFAULT_SAMPLES,
                build_graph: bool = True,
                ) -> tuple[CheckReport, CommGraph | None,
                           dict[int, CommRun]]:
    """Full static analysis of one shipped app.

    Concolically executes at every machine size in ``samples`` (for
    closed-form fitting) and ``scales`` (for findings), extracts the
    communication graph, and aggregates scale-generic findings into one
    report.  Returns (report, graph, runs-by-P).
    """
    program, params = static_params(name)
    subject = f"static/{name}"
    sizes = sorted(set(scales) | (set(samples) if build_graph else set()))
    runs: dict[int, CommRun] = {}
    for p in sizes:
        runs[p] = analyze_program(program, p, params, subject=subject)
    graph: CommGraph | None = None
    if build_graph:
        graph = CommGraph(subject)
        for p in samples:
            graph.add_run(runs[p])
    per_scale = [(p, diag)
                 for p in scales
                 for diag in run_findings(runs[p], subject)]
    report = CheckReport(subject=subject)
    report.extend(_merge_findings(per_scale))
    report.stats["static_scales"] = len(scales)
    report.stats["static_events"] = sum(
        runs[p].trace.total_events for p in scales)
    report.stats["static_deadlocks"] = sum(
        int(runs[p].deadlocked) for p in scales)
    if graph is not None:
        for line in graph.summary():
            report.notes.append(f"graph: {line}")
    return report.finalize(), graph, runs
