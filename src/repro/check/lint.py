"""Static SPMD lint over application and example sources.

The dynamic checker sees one execution; these AST rules catch API misuse
patterns that may only misbehave at other scales or timings.  All rules
are heuristics over names (``ctx``/``rt`` receivers are not resolved),
so every finding can be suppressed with a ``# spmd: ignore`` or
``# spmd: ignore[CODE]`` comment on the flagged line, or file-wide with
``# spmd: ignore-file`` / ``# spmd: ignore-file[CODE]`` anywhere in the
file (file-level suppression applies first; per-line comments then
cover whatever codes it left active).

Rules:

``SPMD001``
    The destination of a ``spread_move_*`` / ``write_move_block`` /
    ``overlap_fix*`` call is read again before a ``movewait`` — the
    transfer may not have completed (the Ack & Barrier model requires
    MOVEWAIT before the data is usable).
``SPMD002``
    A blocking generator API (``barrier``, ``gop``, ``vgop``,
    ``flag_wait``, ``movewait``, ``finish_puts``, ``recv``, ...) called
    without ``yield from`` — the generator is created and dropped, so
    the call silently does nothing.
``SPMD003``
    A packet obtained from an in-place RECEIVE is used after a later
    blocking receive — the ring-buffer slot may have been reused.
``SPMD004``
    An *ungrouped* collective under a cell-dependent branch: if not
    every cell takes the branch, the collective's membership is wrong
    and the program deadlocks (collectives passed an explicit group are
    exempt — conditioning a group collective on membership is correct).
    ``ctx.ckpt_state(...)`` bags are treated as uniform: the checkpoint
    gate is a whole-machine barrier, so their control fields (``fresh``,
    loop counters) agree across cells even when the data defaults that
    seeded them were cell-local.
``SPMD005``
    An ``ElementStride`` built from an enclosing loop variable: the
    stride changes per iteration, defeating the single 1-D hardware
    stride transfer the pattern is meant to produce.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator
from pathlib import Path

from repro.check.diagnostics import (
    SEVERITY_WARNING,
    CheckReport,
    Diagnostic,
)

#: Generator-based (blocking) cell APIs that need ``yield from``.
BLOCKING_CALLS = frozenset({
    "barrier", "gop", "vgop", "flag_wait", "movewait", "finish_puts",
    "recv", "recv_array", "creg_load", "wt_bind", "wt_refresh",
    "checkpoint",
})

#: Collective calls whose membership must agree across cells.
COLLECTIVE_CALLS = frozenset({"barrier", "gop", "vgop", "movewait"})

#: Run-time move calls -> index of the argument naming the destination.
MOVE_DEST_ARG = {
    "spread_move_row": 0,
    "spread_move_col": 0,
    "spread_move_block": 0,
    "write_move_block": 1,
    "overlap_fix": 0,
    "overlap_fix_mixed": 0,
}

_IGNORE_RE = re.compile(
    r"#\s*spmd:\s*ignore(?!-file)(?:\[([A-Z0-9, ]+)\])?")
_IGNORE_FILE_RE = re.compile(
    r"#\s*spmd:\s*ignore-file(?:\[([A-Z0-9, ]+)\])?")


def _suppressions(source: str) -> dict[int, set[str] | None]:
    """Line -> suppressed codes (None = all codes) from ignore comments."""
    out: dict[int, set[str] | None] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _IGNORE_RE.search(line)
        if m:
            codes = m.group(1)
            out[lineno] = (
                {c.strip() for c in codes.split(",")} if codes else None
            )
    return out


def _file_suppressions(source: str) -> tuple[bool, set[str] | None]:
    """File-wide suppressions from ``# spmd: ignore-file`` comments.

    Returns ``(active, codes)``: ``codes`` is None when every code is
    suppressed (a bare ``ignore-file``), else the union of the codes
    named by all ``ignore-file[...]`` comments in the file.
    """
    codes: set[str] = set()
    active = False
    for m in _IGNORE_FILE_RE.finditer(source):
        active = True
        named = m.group(1)
        if named is None:
            return True, None
        codes.update(c.strip() for c in named.split(","))
    return active, codes if active else None


def _attr_name(func: ast.expr) -> str | None:
    """The trailing attribute name of a call target (``rt.gop`` -> gop)."""
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _base_name(node: ast.expr) -> str | None:
    """The root Name of an expression like ``dest.data[i]``."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _names_loaded(node: ast.AST, *, skip: set[int]) -> set[str]:
    """Every Name read inside ``node``, excluding subtrees in ``skip``."""
    found: set[str] = set()
    stack: list[ast.AST] = [node]
    while stack:
        cur = stack.pop()
        if id(cur) in skip:
            continue
        if isinstance(cur, ast.Name) and isinstance(cur.ctx, ast.Load):
            found.add(cur.id)
        stack.extend(ast.iter_child_nodes(cur))
    return found


def _header_nodes(stmt: ast.stmt) -> list[ast.AST]:
    """The expressions evaluated *at* this statement, excluding nested
    statement bodies (those are scanned by recursion)."""
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, ast.For):
        return [stmt.iter]
    if isinstance(stmt, ast.With):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Try):
        return []
    return [stmt]


def _walk_headers(headers: list[ast.AST]) -> Iterator[ast.AST]:
    for header in headers:
        for node in ast.walk(header):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield node


def _mentions_taint(node: ast.AST, tainted: set[str]) -> bool:
    for cur in ast.walk(node):
        if isinstance(cur, ast.Name) and cur.id in tainted:
            return True
        if isinstance(cur, ast.Attribute) and cur.attr == "pe":
            return True
    return False


def _assigned_names(target: ast.expr) -> list[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        out: list[str] = []
        for elt in target.elts:
            out.extend(_assigned_names(elt))
        return out
    return []


class _FunctionLinter:
    """Runs every rule over one function body (nested functions are
    linted separately by the file walker)."""

    def __init__(self, func: ast.FunctionDef, filename: str) -> None:
        self.func = func
        self.filename = filename
        self.diagnostics: list[Diagnostic] = []
        #: Call nodes that are the operand of a ``yield from`` / ``await``.
        self.driven: set[int] = {
            id(node.value)
            for node in ast.walk(func)
            if isinstance(node, (ast.YieldFrom, ast.Await))
        }
        # A blocking generator bound to a name and driven (or returned —
        # handing the caller responsibility) later is not dropped:
        #     gen = ctx.barrier()
        #     ...
        #     yield from gen
        driven_names = {
            node.value.id
            for node in ast.walk(func)
            if isinstance(node, (ast.YieldFrom, ast.Await, ast.Return))
            and isinstance(node.value, ast.Name)
        }
        for node in ast.walk(func):
            if (isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and node.targets[0].id in driven_names
                    and isinstance(node.value, ast.Call)):
                self.driven.add(id(node.value))

    def emit(self, code: str, line: int, message: str,
             severity: str = "error") -> None:
        self.diagnostics.append(Diagnostic(
            code=code, message=message, severity=severity,
            file=self.filename, line=line,
        ))

    def run(self) -> list[Diagnostic]:
        self._lint_statements(self._own_body(), tainted={"pe"},
                              pe_branch=False)
        self._lint_strides()
        return self.diagnostics

    def _own_body(self) -> list[ast.stmt]:
        return self.func.body

    # -- linear rules (SPMD001/002/003/004) ----------------------------

    def _lint_statements(self, body: list[ast.stmt], *, tainted: set[str],
                         pe_branch: bool) -> None:
        # pending destination name -> (line, move call name)
        pending: dict[str, tuple[int, str]] = {}
        unsafe_packets: dict[str, int] = {}
        inplace_packets: set[str] = set()
        for stmt in body:
            self._scan_statement(stmt, tainted, pe_branch, pending,
                                 inplace_packets, unsafe_packets)

    def _scan_statement(self, stmt: ast.stmt, tainted: set[str],
                        pe_branch: bool,
                        pending: dict[str, tuple[int, str]],
                        inplace_packets: set[str],
                        unsafe_packets: dict[str, int]) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # linted as its own function
        # Only this statement's "header" is scanned here; the bodies of
        # compound statements are visited by the recursion below (so
        # nothing is reported twice).
        headers = _header_nodes(stmt)
        move_calls: list[ast.Call] = []
        blocking = False
        for node in _walk_headers(headers):
            if not isinstance(node, ast.Call):
                continue
            name = _attr_name(node.func)
            if name in MOVE_DEST_ARG:
                move_calls.append(node)
            if name in BLOCKING_CALLS:
                blocking = True
                if id(node) not in self.driven:
                    self.emit(
                        "SPMD002", node.lineno,
                        f"blocking call `{name}` is not driven with "
                        f"`yield from`; the generator is created and "
                        f"dropped, so the {name} never happens",
                    )
                if pe_branch and name in COLLECTIVE_CALLS \
                        and not self._grouped(node, name):
                    self.emit(
                        "SPMD004", node.lineno,
                        f"ungrouped collective `{name}` under a "
                        f"cell-dependent branch: cells that skip this "
                        f"branch never arrive, so the collective "
                        f"deadlocks or matches the wrong instance",
                    )
                if name == "movewait":
                    pending.clear()
        # SPMD001: reads of not-yet-waited move destinations.
        skip = {id(c) for c in move_calls}
        reads = set()
        for header in headers:
            reads |= _names_loaded(header, skip=skip)
        if pending:
            for read in reads & set(pending):
                line, move = pending.pop(read)
                self.emit(
                    "SPMD001", stmt.lineno,
                    f"`{read}` is read here but `{move}` on line {line} "
                    f"has no `movewait` in between: the transfer may "
                    f"not have completed",
                )
        for call in move_calls:
            name = _attr_name(call.func)
            assert name is not None
            dest_idx = MOVE_DEST_ARG[name]
            if dest_idx < len(call.args):
                dest = _base_name(call.args[dest_idx])
                if dest is not None:
                    pending[dest] = (call.lineno, name)
        # SPMD003: in-place packets invalidated by further blocking calls.
        if unsafe_packets:
            for read in reads & set(unsafe_packets):
                line = unsafe_packets.pop(read)
                self.emit(
                    "SPMD003", stmt.lineno,
                    f"in-place RECEIVE packet `{read}` (line {line}) is "
                    f"used after a later blocking call: its ring-buffer "
                    f"slot may have been reused",
                    severity=SEVERITY_WARNING,
                )
        if blocking:
            for name in inplace_packets:
                unsafe_packets.setdefault(name, stmt.lineno)
        self._track_inplace(stmt, inplace_packets)
        self._track_taint(stmt, tainted)
        # Recurse into compound statements in order.
        for child_body, child_pe in self._child_bodies(stmt, tainted,
                                                       pe_branch):
            for child in child_body:
                self._scan_statement(child, tainted, child_pe, pending,
                                     inplace_packets, unsafe_packets)

    def _child_bodies(self, stmt: ast.stmt, tainted: set[str],
                      pe_branch: bool) -> Iterator[
            tuple[list[ast.stmt], bool]]:
        if isinstance(stmt, ast.If):
            dependent = pe_branch or _mentions_taint(stmt.test, tainted)
            yield stmt.body, dependent
            yield stmt.orelse, dependent
        elif isinstance(stmt, ast.While):
            dependent = pe_branch or _mentions_taint(stmt.test, tainted)
            yield stmt.body, dependent
            yield stmt.orelse, dependent
        elif isinstance(stmt, ast.For):
            dependent = pe_branch or _mentions_taint(stmt.iter, tainted)
            yield stmt.body, dependent
            yield stmt.orelse, dependent
        elif isinstance(stmt, (ast.With, ast.Try)):
            for attr in ("body", "orelse", "finalbody"):
                yield getattr(stmt, attr, []), pe_branch
            for handler in getattr(stmt, "handlers", []):
                yield handler.body, pe_branch

    def _grouped(self, call: ast.Call, name: str) -> bool:
        if any(kw.arg == "group" for kw in call.keywords):
            return True
        if name == "barrier":
            return len(call.args) >= 1
        if name in ("gop", "vgop"):
            return len(call.args) >= 3
        return False  # movewait always synchronizes all cells

    def _track_inplace(self, stmt: ast.stmt,
                       inplace_packets: set[str]) -> None:
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            return
        value = stmt.value
        if isinstance(value, ast.YieldFrom):
            value = value.value
        if not isinstance(value, ast.Call):
            return
        if _attr_name(value.func) != "recv":
            return
        in_place = any(
            kw.arg == "in_place"
            and not (isinstance(kw.value, ast.Constant)
                     and kw.value.value is False)
            for kw in value.keywords
        )
        if in_place:
            inplace_packets.update(_assigned_names(stmt.targets[0]))

    def _track_taint(self, stmt: ast.stmt, tainted: set[str]) -> None:
        if isinstance(stmt, ast.Assign):
            if self._launders_taint(stmt.value):
                # An ungrouped reduction returns the same value on every
                # cell: its result is symmetric even if its inputs were
                # cell-dependent.
                for target in stmt.targets:
                    tainted.difference_update(_assigned_names(target))
                return
            if _mentions_taint(stmt.value, tainted):
                for target in stmt.targets:
                    tainted.update(_assigned_names(target))
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            if stmt.value is not None \
                    and _mentions_taint(stmt.value, tainted):
                tainted.update(_assigned_names(stmt.target))
        elif isinstance(stmt, ast.For):
            if _mentions_taint(stmt.iter, tainted):
                tainted.update(_assigned_names(stmt.target))

    def _launders_taint(self, value: ast.expr) -> bool:
        if isinstance(value, ast.Call) \
                and _attr_name(value.func) == "ckpt_state":
            # A checkpoint state bag: the gate it feeds is a
            # whole-machine barrier, so its control fields are uniform
            # across cells even when its defaults were cell-local.
            return True
        if not isinstance(value, ast.YieldFrom):
            return False
        call = value.value
        if not isinstance(call, ast.Call):
            return False
        name = _attr_name(call.func)
        return name in ("gop", "vgop") and not self._grouped(call, name)

    # -- SPMD005 -------------------------------------------------------

    def _lint_strides(self) -> None:
        self._walk_strides(self.func.body, loop_vars=set())

    def _walk_strides(self, body: list[ast.stmt],
                      loop_vars: set[str]) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            inner = set(loop_vars)
            if isinstance(stmt, ast.For):
                inner.update(_assigned_names(stmt.target))
            if loop_vars:
                for node in _walk_headers(_header_nodes(stmt)):
                    if not isinstance(node, ast.Call):
                        continue
                    if _attr_name(node.func) != "ElementStride":
                        continue
                    used = {
                        n for arg in node.args for n in ast.walk(arg)
                        if isinstance(n, ast.Name) and n.id in loop_vars
                    }
                    if used:
                        names = ", ".join(
                            sorted(n.id  # type: ignore[attr-defined]
                                   for n in used)
                        )
                        self.emit(
                            "SPMD005", node.lineno,
                            f"ElementStride built from loop "
                            f"variable(s) {names}: the stride varies "
                            f"per iteration, so this cannot become one "
                            f"1-D hardware stride transfer",
                            severity=SEVERITY_WARNING,
                        )
            for child_body, _pe in _all_bodies(stmt):
                self._walk_strides(child_body, inner)


def _all_bodies(stmt: ast.stmt) -> Iterator[list[ast.stmt]]:
    for attr in ("body", "orelse", "finalbody"):
        child = getattr(stmt, attr, None)
        if isinstance(child, list):
            yield child, False
    for handler in getattr(stmt, "handlers", []):
        yield handler.body, False


def lint_source(source: str, filename: str) -> list[Diagnostic]:
    """Lint one module's source text; returns sorted diagnostics."""
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        return [Diagnostic(
            code="SPMD000",
            message=f"syntax error: {exc.msg}",
            file=filename,
            line=exc.lineno or 1,
        )]
    suppress = _suppressions(source)
    file_active, file_codes = _file_suppressions(source)
    diagnostics: list[Diagnostic] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef):
            diagnostics.extend(_FunctionLinter(node, filename).run())
    kept = []
    for diag in diagnostics:
        # File-level suppression applies first; per-line comments then
        # cover whatever codes the file-level one left unsuppressed.
        if file_active and (file_codes is None
                            or diag.code in file_codes):
            continue
        codes = suppress.get(diag.line or 0, "missing")
        if codes == "missing":
            kept.append(diag)
        elif codes is not None and diag.code not in codes:
            kept.append(diag)
    kept.sort(key=Diagnostic.sort_key)
    return kept


def lint_file(path: str | Path, *, root: str | Path | None = None
              ) -> list[Diagnostic]:
    """Lint one file; paths in diagnostics are relative to ``root``."""
    path = Path(path)
    shown = path
    if root is not None:
        try:
            shown = path.resolve().relative_to(Path(root).resolve())
        except ValueError:
            shown = path
    return lint_source(path.read_text(encoding="utf-8"), str(shown))


def lint_paths(paths: list[Path], *, root: str | Path | None = None
               ) -> CheckReport:
    """Lint a file set into one report (subject ``lint``)."""
    report = CheckReport(subject="lint")
    files = 0
    for path in sorted(paths):
        files += 1
        report.extend(lint_file(path, root=root))
    report.stats["files"] = files
    return report.finalize()
