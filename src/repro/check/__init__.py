"""repro.check — one-sided race detector, synchronization sanitizer,
and SPMD lint.

Two cooperating analyses over the same diagnostic vocabulary:

* the **dynamic checker** (:mod:`repro.check.hb`,
  :mod:`repro.check.races`) replays a recorded trace, reconstructs the
  happens-before order implied by barriers, reductions, flag waits, and
  message pairs, and reports unordered conflicting PUT/GET footprints
  plus synchronization defects (deadlocked waits, mismatched
  collectives);
* the **static lint** (:mod:`repro.check.lint`) walks application
  source for SPMD API misuse that may only misbehave at other scales.

Drive both through :mod:`repro.check.runner` or ``repro check``.
"""

from repro.check.diagnostics import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    CheckReport,
    Diagnostic,
    EventRef,
    report_json,
)
from repro.check.hb import HBResult, build_happens_before, hb_report
from repro.check.lint import lint_file, lint_paths, lint_source
from repro.check.races import (
    Access,
    Footprint,
    extract_accesses,
    find_races,
    race_report,
)
from repro.check.runner import (
    check_app,
    check_apps,
    check_buggy,
    check_trace,
    default_lint_paths,
    lint_report,
    trace_is_annotated,
)

__all__ = [
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "Access",
    "CheckReport",
    "Diagnostic",
    "EventRef",
    "Footprint",
    "HBResult",
    "build_happens_before",
    "check_app",
    "check_apps",
    "check_buggy",
    "check_trace",
    "default_lint_paths",
    "extract_accesses",
    "find_races",
    "hb_report",
    "lint_file",
    "lint_paths",
    "lint_report",
    "lint_source",
    "race_report",
    "report_json",
    "trace_is_annotated",
]
