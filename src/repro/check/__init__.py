"""repro.check — one-sided race detector, synchronization sanitizer,
and SPMD lint.

Two cooperating analyses over the same diagnostic vocabulary:

* the **dynamic checker** (:mod:`repro.check.hb`,
  :mod:`repro.check.races`) replays a recorded trace, reconstructs the
  happens-before order implied by barriers, reductions, flag waits, and
  message pairs, and reports unordered conflicting PUT/GET footprints
  plus synchronization defects (deadlocked waits, mismatched
  collectives);
* the **static lint** (:mod:`repro.check.lint`) walks application
  source for SPMD API misuse that may only misbehave at other scales;
* the **static communication-graph analyzer** (:mod:`repro.check.comm`,
  :mod:`repro.check.symbolic`) concolically executes cell programs at
  several machine sizes, extracts the PUT/GET communication graph with
  closed-form message counts in P, and reports scale-generic deadlock,
  race, and stride findings — plus a **trace-conformance** mode
  (:mod:`repro.check.conform`) that checks recorded traces are
  linearizations of the predicted graph.

Drive them through :mod:`repro.check.runner` or ``repro check``.
"""

from repro.check.comm import (
    STATIC_APPS,
    CommGraph,
    CommRun,
    analyze_app,
    analyze_program,
    check_program,
)
from repro.check.conform import (
    CONFORM_APPS,
    conform_app,
    conform_trace,
)
from repro.check.diagnostics import (
    CHECK_SCHEMA,
    KNOWN_CHECK_SCHEMAS,
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    CheckReport,
    Diagnostic,
    EventRef,
    report_json,
)
from repro.check.hb import HBResult, build_happens_before, hb_report
from repro.check.lint import lint_file, lint_paths, lint_source
from repro.check.races import (
    Access,
    Footprint,
    extract_accesses,
    find_races,
    race_report,
)
from repro.check.runner import (
    check_app,
    check_apps,
    check_buggy,
    check_conform,
    check_static_apps,
    check_static_buggy,
    check_trace,
    default_lint_paths,
    lint_report,
    trace_is_annotated,
)
from repro.check.symbolic import (
    ClosedForm,
    fit_closed_form,
    infer_partner_pattern,
)

__all__ = [
    "CHECK_SCHEMA",
    "CONFORM_APPS",
    "KNOWN_CHECK_SCHEMAS",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "STATIC_APPS",
    "Access",
    "CheckReport",
    "ClosedForm",
    "CommGraph",
    "CommRun",
    "Diagnostic",
    "EventRef",
    "Footprint",
    "HBResult",
    "analyze_app",
    "analyze_program",
    "build_happens_before",
    "check_app",
    "check_apps",
    "check_buggy",
    "check_conform",
    "check_program",
    "check_static_apps",
    "check_static_buggy",
    "check_trace",
    "conform_app",
    "conform_trace",
    "default_lint_paths",
    "extract_accesses",
    "find_races",
    "fit_closed_form",
    "hb_report",
    "infer_partner_pattern",
    "lint_file",
    "lint_paths",
    "lint_report",
    "lint_source",
    "race_report",
    "report_json",
    "trace_is_annotated",
]
