"""The VPP Fortran runtime layer: data distributions, global arrays with
overlap areas, SPREAD MOVE / OVERLAP FIX / MOVEWAIT, and global
reductions over communication registers and ring buffers."""

from repro.lang.directives import (
    Fragment,
    MoveWait,
    SpreadMove,
    execute_fragment,
    parse_fragment,
)
from repro.lang.distribution import BlockDistribution, CyclicDistribution
from repro.lang.global_array import GlobalArray
from repro.lang.reductions import CommRegisterReducer, ring_vector_reduce
from repro.lang.runtime import RT_CALL_US, RT_PER_MSG_US, VPPRuntime

__all__ = [
    "Fragment",
    "MoveWait",
    "SpreadMove",
    "execute_fragment",
    "parse_fragment",
    "BlockDistribution",
    "CyclicDistribution",
    "GlobalArray",
    "CommRegisterReducer",
    "ring_vector_reduce",
    "RT_CALL_US",
    "RT_PER_MSG_US",
    "VPPRuntime",
]
