"""Data distributions (index partitions).

VPP Fortran decomposes arrays and DO loops with *index partition*
directives, corresponding to HPF's ALIGN + DISTRIBUTE (section 2.3); both
models include "block and cyclic decomposition".  A distribution maps a
global index range [0, n) onto ``parts`` processors; the runtime uses it
to translate global subscripts into (owner, local index) pairs — the
"index calculation code" the translator inserts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ConfigurationError


@dataclass(frozen=True)
class IndexFootprint:
    """The set of global indices one part owns, as an arithmetic range.

    ``count`` indices starting at ``start``, ``step`` apart — the
    closed-form footprint a compiler derives from a distribution, used by
    the static communication analyzer (:mod:`repro.check.comm`) to reason
    about per-cell byte ranges without enumerating indices.  ``symbolic``
    renders the same range as an expression in ``cellid`` and ``P`` so
    reports stay readable at any scale.
    """

    start: int
    count: int
    step: int
    symbolic: str

    def indices(self) -> range:
        """The concrete indices, smallest first."""
        return range(self.start, self.start + self.count * self.step,
                     self.step) if self.count else range(0)

    @property
    def last(self) -> int:
        """Largest owned index; ``start - step`` when the part is empty."""
        return self.start + (self.count - 1) * self.step

    def __contains__(self, global_index: int) -> bool:
        if self.count == 0:
            return False
        offset = global_index - self.start
        return (0 <= offset <= (self.count - 1) * self.step
                and offset % self.step == 0)


@dataclass(frozen=True)
class BlockDistribution:
    """Contiguous blocks, as even as possible: the first ``n % parts``
    processors get one extra element (numpy ``array_split`` convention)."""

    n: int
    parts: int

    def __post_init__(self) -> None:
        if self.n < 0:
            raise ConfigurationError("extent must be non-negative")
        if self.parts < 1:
            raise ConfigurationError("need at least one part")

    def local_size(self, part: int) -> int:
        self._check_part(part)
        q, r = divmod(self.n, self.parts)
        return q + (1 if part < r else 0)

    def start(self, part: int) -> int:
        """First global index owned by ``part``."""
        self._check_part(part)
        q, r = divmod(self.n, self.parts)
        return part * q + min(part, r)

    def part_range(self, part: int) -> tuple[int, int]:
        """[start, end) of global indices owned by ``part``."""
        start = self.start(part)
        return start, start + self.local_size(part)

    def owner(self, global_index: int) -> int:
        self._check_index(global_index)
        q, r = divmod(self.n, self.parts)
        boundary = r * (q + 1)
        if global_index < boundary:
            return global_index // (q + 1)
        if q == 0:
            raise ConfigurationError(
                f"index {global_index} beyond distributed extent")
        return r + (global_index - boundary) // q

    def local_index(self, global_index: int) -> int:
        return global_index - self.start(self.owner(global_index))

    def global_index(self, part: int, local_index: int) -> int:
        if not 0 <= local_index < self.local_size(part):
            raise ConfigurationError(
                f"local index {local_index} outside part {part}'s "
                f"{self.local_size(part)} elements")
        return self.start(part) + local_index

    def footprint(self, part: int) -> IndexFootprint:
        """Closed-form index range of ``part``: a contiguous run of
        ``q + (part < r)`` indices starting at ``part*q + min(part, r)``
        where ``q, r = divmod(n, parts)``."""
        start, end = self.part_range(part)
        q, r = divmod(self.n, self.parts)
        if r:
            sym = (f"cellid*{q} + min(cellid, {r}) .. "
                   f"+{q}+(cellid<{r}) step 1")
        else:
            sym = f"cellid*{q} .. +{q} step 1"
        return IndexFootprint(start=start, count=end - start, step=1,
                              symbolic=sym)

    def _check_part(self, part: int) -> None:
        if not 0 <= part < self.parts:
            raise ConfigurationError(
                f"part {part} out of range for {self.parts} parts")

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.n:
            raise ConfigurationError(
                f"global index {index} out of range for extent {self.n}")


@dataclass(frozen=True)
class CyclicDistribution:
    """Round-robin assignment: global index ``g`` lives on ``g % parts``."""

    n: int
    parts: int

    def __post_init__(self) -> None:
        if self.n < 0:
            raise ConfigurationError("extent must be non-negative")
        if self.parts < 1:
            raise ConfigurationError("need at least one part")

    def local_size(self, part: int) -> int:
        self._check_part(part)
        q, r = divmod(self.n, self.parts)
        return q + (1 if part < r else 0)

    def owner(self, global_index: int) -> int:
        self._check_index(global_index)
        return global_index % self.parts

    def local_index(self, global_index: int) -> int:
        self._check_index(global_index)
        return global_index // self.parts

    def global_index(self, part: int, local_index: int) -> int:
        if not 0 <= local_index < self.local_size(part):
            raise ConfigurationError(
                f"local index {local_index} outside part {part}'s "
                f"{self.local_size(part)} elements")
        return local_index * self.parts + part

    def footprint(self, part: int) -> IndexFootprint:
        """Closed-form index range of ``part``: ``local_size(part)``
        indices starting at ``part`` with stride ``parts``."""
        return IndexFootprint(
            start=part, count=self.local_size(part), step=self.parts,
            symbolic="cellid .. n step P")

    def _check_part(self, part: int) -> None:
        if not 0 <= part < self.parts:
            raise ConfigurationError(
                f"part {part} out of range for {self.parts} parts")

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.n:
            raise ConfigurationError(
                f"global index {index} out of range for extent {self.n}")
