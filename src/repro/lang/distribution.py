"""Data distributions (index partitions).

VPP Fortran decomposes arrays and DO loops with *index partition*
directives, corresponding to HPF's ALIGN + DISTRIBUTE (section 2.3); both
models include "block and cyclic decomposition".  A distribution maps a
global index range [0, n) onto ``parts`` processors; the runtime uses it
to translate global subscripts into (owner, local index) pairs — the
"index calculation code" the translator inserts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ConfigurationError


@dataclass(frozen=True)
class BlockDistribution:
    """Contiguous blocks, as even as possible: the first ``n % parts``
    processors get one extra element (numpy ``array_split`` convention)."""

    n: int
    parts: int

    def __post_init__(self) -> None:
        if self.n < 0:
            raise ConfigurationError("extent must be non-negative")
        if self.parts < 1:
            raise ConfigurationError("need at least one part")

    def local_size(self, part: int) -> int:
        self._check_part(part)
        q, r = divmod(self.n, self.parts)
        return q + (1 if part < r else 0)

    def start(self, part: int) -> int:
        """First global index owned by ``part``."""
        self._check_part(part)
        q, r = divmod(self.n, self.parts)
        return part * q + min(part, r)

    def part_range(self, part: int) -> tuple[int, int]:
        """[start, end) of global indices owned by ``part``."""
        start = self.start(part)
        return start, start + self.local_size(part)

    def owner(self, global_index: int) -> int:
        self._check_index(global_index)
        q, r = divmod(self.n, self.parts)
        boundary = r * (q + 1)
        if global_index < boundary:
            return global_index // (q + 1)
        if q == 0:
            raise ConfigurationError(
                f"index {global_index} beyond distributed extent")
        return r + (global_index - boundary) // q

    def local_index(self, global_index: int) -> int:
        return global_index - self.start(self.owner(global_index))

    def global_index(self, part: int, local_index: int) -> int:
        if not 0 <= local_index < self.local_size(part):
            raise ConfigurationError(
                f"local index {local_index} outside part {part}'s "
                f"{self.local_size(part)} elements")
        return self.start(part) + local_index

    def _check_part(self, part: int) -> None:
        if not 0 <= part < self.parts:
            raise ConfigurationError(
                f"part {part} out of range for {self.parts} parts")

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.n:
            raise ConfigurationError(
                f"global index {index} out of range for extent {self.n}")


@dataclass(frozen=True)
class CyclicDistribution:
    """Round-robin assignment: global index ``g`` lives on ``g % parts``."""

    n: int
    parts: int

    def __post_init__(self) -> None:
        if self.n < 0:
            raise ConfigurationError("extent must be non-negative")
        if self.parts < 1:
            raise ConfigurationError("need at least one part")

    def local_size(self, part: int) -> int:
        self._check_part(part)
        q, r = divmod(self.n, self.parts)
        return q + (1 if part < r else 0)

    def owner(self, global_index: int) -> int:
        self._check_index(global_index)
        return global_index % self.parts

    def local_index(self, global_index: int) -> int:
        self._check_index(global_index)
        return global_index // self.parts

    def global_index(self, part: int, local_index: int) -> int:
        if not 0 <= local_index < self.local_size(part):
            raise ConfigurationError(
                f"local index {local_index} outside part {part}'s "
                f"{self.local_size(part)} elements")
        return local_index * self.parts + part

    def _check_part(self, part: int) -> None:
        if not 0 <= part < self.parts:
            raise ConfigurationError(
                f"part {part} out of range for {self.parts} parts")

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.n:
            raise ConfigurationError(
                f"global index {index} out of range for extent {self.n}")
