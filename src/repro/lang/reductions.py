"""Global reduction implementations (section 4.5).

Two concrete mechanisms, matching the paper:

* **Scalar reductions over communication registers** — "since
  communication registers are allocated in shared memory space, sending
  data from communication registers to other communication registers can
  be performed with a simple store instruction ...  If sending addresses
  are previously calculated using algorithms such as binary tree or cross
  over, global reduction can be achieved only by repeating store,
  execute, and load instructions."  :class:`CommRegisterReducer` runs the
  cross-over (butterfly) schedule over the hardware register files, with
  doubles carried in 8-byte register pairs and p-bit blocking providing
  the synchronization.

* **Vector reductions over ring buffers with SEND/RECEIVE** —
  :func:`ring_vector_reduce` pipelines the vector around the group ring;
  each cell combines the incoming vector *directly out of the ring
  buffer* (``in_place`` receive, no user-area copy) and forwards it, then
  the root circulates the result.  This is the mechanism whose blocking
  SENDs dominate CG in section 5.4.

(The probe layer's composite GOP/VGOP events, used by the standard
applications, model the same mechanisms in MLSim; these implementations
exist to validate them functionally and to exercise the register/ring
hardware end to end.)
"""

from __future__ import annotations

import struct
from collections.abc import Iterator
from typing import TYPE_CHECKING

import numpy as np

from repro.core.collectives import Role, butterfly_schedule, combine
from repro.core.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.program import CellContext, Group

#: Register slots used per in-flight reduction generation.
_SLOTS_PER_GENERATION = 2  # an 8-byte (two-register) value per round slot
_ROUNDS_SUPPORTED = 16     # up to 2^16 cells
_GENERATIONS = 2           # adjacent generations may overlap by one


def _pack(value: float) -> tuple[int, int]:
    raw = struct.pack("<d", value)
    return (int.from_bytes(raw[:4], "little"),
            int.from_bytes(raw[4:], "little"))


def _unpack(low: int, high: int) -> float:
    raw = low.to_bytes(4, "little") + high.to_bytes(4, "little")
    return struct.unpack("<d", raw)[0]


class CommRegisterReducer:
    """Scalar reductions over the communication registers.

    Register layout: generation ``g`` (mod ``_GENERATIONS``) and round
    ``r`` use the 8-byte register pair starting at
    ``(g * _ROUNDS_SUPPORTED + r) * 2``.  Because the butterfly
    synchronizes transitively each round, members can lag each other by
    at most one generation, so two generations of slots suffice.
    """

    def __init__(self, ctx: "CellContext",
                 group: "Group | None" = None) -> None:
        self.ctx = ctx
        self.group = group or ctx.world
        if ctx.pe not in self.group:
            raise ConfigurationError(
                f"cell {ctx.pe} not a member of the reduction group")
        self.rank = self.group.rank_of(ctx.pe)
        self._generation = 0
        needed = _GENERATIONS * _ROUNDS_SUPPORTED * _SLOTS_PER_GENERATION
        if needed > ctx.hw.mc.registers.num_registers:
            raise ConfigurationError(
                "communication register file too small for the reducer")

    def _slot(self, round_index: int) -> int:
        gen = self._generation % _GENERATIONS
        return (gen * _ROUNDS_SUPPORTED + round_index) * _SLOTS_PER_GENERATION

    def reduce(self, value: float, op: str = "sum") -> Iterator[None]:
        """Reduce ``value`` across the group; every member receives the
        result.  Blocking loads ride the registers' p-bits."""
        size = self.group.size
        mine = float(value)
        if size > 1:
            for step in butterfly_schedule(self.rank, size):
                slot = self._slot(step.round_index)
                if step.role is Role.IDLE:
                    continue
                partner_pe = self.group.members[step.partner]
                if step.role in (Role.SEND, Role.EXCHANGE):
                    low, high = _pack(mine)
                    self.ctx.creg_store(partner_pe, slot, low)
                    self.ctx.creg_store(partner_pe, slot + 1, high)
                if step.role in (Role.RECEIVE, Role.EXCHANGE):
                    low = yield from self.ctx.creg_load(slot)
                    high = yield from self.ctx.creg_load(slot + 1)
                    other = _unpack(low, high)
                    if step.role is Role.RECEIVE and step.round_index > 0:
                        # Fold-out round: adopt the finished result.
                        mine = other
                    else:
                        mine = combine(op, mine, other)
        self._generation += 1
        return mine


def ring_vector_reduce(ctx: "CellContext", vector: np.ndarray,
                       op: str = "sum",
                       group: "Group | None" = None) -> Iterator[None]:
    """Vector reduction over the SEND/RECEIVE ring buffers.

    The partial vector travels rank 0 -> 1 -> ... -> P-1, each cell
    combining its contribution directly out of the ring buffer; the last
    rank holds the result and circulates it back around the ring.
    Returns the reduced vector on every member.
    """
    grp = group or ctx.world
    rank = grp.rank_of(ctx.pe)
    size = grp.size
    acc = np.array(vector, dtype=np.float64, copy=True)
    if size == 1:
        return acc
    succ = grp.members[(rank + 1) % size]
    reduce_ctx, bcast_ctx = 101, 102
    # Reduce lap: partial vectors flow rank 0 -> 1 -> ... -> size-1.
    if rank > 0:
        packet = yield from ctx.recv(context=reduce_ctx, in_place=True)
        incoming = np.frombuffer(packet.data, dtype=np.float64)
        if op == "sum":
            acc = acc + incoming
        elif op == "max":
            acc = np.maximum(acc, incoming)
        elif op == "min":
            acc = np.minimum(acc, incoming)
        elif op == "prod":
            acc = acc * incoming
        else:
            raise ConfigurationError(f"vector reduction op {op!r} unknown")
    if rank < size - 1:
        ctx.send(succ, acc, context=reduce_ctx)
    # Broadcast lap: the last rank holds the result and circulates it.
    if rank == size - 1:
        ctx.send(succ, acc, context=bcast_ctx)
    else:
        packet = yield from ctx.recv(context=bcast_ctx, in_place=True)
        acc = np.frombuffer(packet.data, dtype=np.float64).copy()
        if (rank + 1) % size != size - 1:
            ctx.send(succ, acc, context=bcast_ctx)
    return acc
