"""Global arrays: VPP Fortran's global memory space (Figure 1).

A global array is declared identically on every cell; an index partition
block-distributes one axis across the processors.  Each cell allocates
its own block — plus, optionally, an *overlap area*: "a boundary data
area replicated in adjacent processors" (Figure 2), kept current with
OVERLAP FIX.

Every cell allocates the same *maximum* block extent (the first part's
size), even when the distribution is uneven, so blocks are symmetric:
identical shape and logical address on every cell.  PUT/GET commands can
therefore target a remote block with locally computed addresses — this is
how the runtime implements the global address space on distributed
memory.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.errors import ConfigurationError
from repro.lang.distribution import BlockDistribution

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.program import CellContext, LocalArray


class GlobalArray:
    """One cell's view of a block-distributed 1-D or 2-D global array."""

    def __init__(self, ctx: "CellContext", shape, dtype=np.float64, *,
                 dist_axis: int = 0, overlap: int = 0) -> None:
        shape = (shape,) if isinstance(shape, int) else tuple(shape)
        if len(shape) not in (1, 2):
            raise ConfigurationError(
                f"global arrays are 1-D or 2-D, got shape {shape}")
        if not 0 <= dist_axis < len(shape):
            raise ConfigurationError(
                f"distribution axis {dist_axis} invalid for shape {shape}")
        if overlap < 0:
            raise ConfigurationError("overlap width must be non-negative")
        self.ctx = ctx
        self.shape = shape
        self.dist_axis = dist_axis
        self.overlap = overlap
        self.dist = BlockDistribution(shape[dist_axis], ctx.num_cells)
        self.lo, self.hi = self.dist.part_range(ctx.pe)
        # Part 0 always has the maximum block size; allocating that extent
        # everywhere keeps the blocks symmetric across cells.
        alloc_extent = self.dist.local_size(0) + 2 * overlap
        local_shape = list(shape)
        local_shape[dist_axis] = alloc_extent
        #: The local block *including* the overlap area on both sides
        #: (identical shape and address on every cell).
        self.block: "LocalArray" = ctx.alloc(tuple(local_shape), dtype)

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------

    @property
    def dtype(self) -> np.dtype:
        return self.block.dtype

    @property
    def local_extent(self) -> int:
        """Owned extent along the distributed axis (without overlap)."""
        return self.hi - self.lo

    def owner(self, global_index: int) -> int:
        """The cell owning ``global_index`` along the distributed axis."""
        return self.dist.owner(global_index)

    def owns(self, global_index: int) -> bool:
        return self.lo <= global_index < self.hi

    def to_local(self, global_index: int) -> int:
        """Local index (into :attr:`block`, overlap included) of an owned
        or overlap-covered global index along the distributed axis."""
        return self._to_local_on(self.ctx.pe, global_index)

    def _to_local_on(self, part: int, global_index: int) -> int:
        lo, hi = self.dist.part_range(part)
        local = global_index - lo + self.overlap
        limit = (hi - lo) + 2 * self.overlap
        if not 0 <= local < limit:
            raise ConfigurationError(
                f"global index {global_index} outside cell {part}'s block "
                f"[{lo}, {hi}) with overlap {self.overlap}")
        return local

    def interior(self) -> np.ndarray:
        """Numpy view of the owned block (overlap and padding excluded)."""
        sl = [slice(None)] * len(self.shape)
        sl[self.dist_axis] = slice(self.overlap,
                                   self.overlap + self.local_extent)
        return self.block.data[tuple(sl)]

    def with_overlap(self) -> np.ndarray:
        """Numpy view of the owned block plus its overlap areas."""
        sl = [slice(None)] * len(self.shape)
        sl[self.dist_axis] = slice(0, self.local_extent + 2 * self.overlap)
        return self.block.data[tuple(sl)]

    def flat_index(self, *global_indices: int) -> int:
        """Flat element offset in this cell's :attr:`block` of a global
        coordinate (the translator's inserted index calculation)."""
        return self.flat_index_on(self.ctx.pe, *global_indices)

    def flat_index_on(self, part: int, *global_indices: int) -> int:
        """Flat element offset of a global coordinate inside ``part``'s
        block.  Valid on any cell because blocks are symmetric."""
        if len(global_indices) != len(self.shape):
            raise ConfigurationError(
                f"{len(self.shape)}-D array needs {len(self.shape)} indices")
        local = list(global_indices)
        local[self.dist_axis] = self._to_local_on(
            part, global_indices[self.dist_axis])
        if len(local) == 1:
            return local[0]
        row, col = local
        ncols = self.block.shape[1]
        if not 0 <= col < ncols or not 0 <= row < self.block.shape[0]:
            raise ConfigurationError(
                f"coordinate {global_indices} maps outside the local block")
        return row * ncols + col

    def gather_global(self) -> np.ndarray:
        """Debug/test helper: assemble the full global array by reading
        every cell's memory directly (no simulated communication)."""
        machine = self.ctx.machine
        full = np.zeros(self.shape, dtype=self.dtype)
        for part in range(machine.config.num_cells):
            lo, hi = self.dist.part_range(part)
            raw = machine.hw_cells[part].memory.view(
                self.block.addr, self.block.nbytes)
            other = raw.view(self.dtype).reshape(self.block.shape)
            sl_local = [slice(None)] * len(self.shape)
            sl_local[self.dist_axis] = slice(self.overlap,
                                             self.overlap + (hi - lo))
            sl_global = [slice(None)] * len(self.shape)
            sl_global[self.dist_axis] = slice(lo, hi)
            full[tuple(sl_global)] = other[tuple(sl_local)]
        return full
