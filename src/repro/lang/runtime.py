"""The VPP Fortran run-time system.

"The translator translates a VPP Fortran program into FORTRAN77
sequential code with run-time system calls for each processing element
... The translator inserts an index calculation code which converts
global addresses to local addresses.  It also inserts communication
library calls for accessing remote data" (section 2.1).

This module is that run-time system: collective data movement
(SPREAD MOVE and OVERLAP FIX) implemented over the PUT/GET interface,
MOVEWAIT completion (the Ack & Barrier model), and run-time cost
accounting — every call charges ``rtsys`` work proportional to the
address calculations and per-message bookkeeping it performs, which is
what the "Run-time system" bucket of Figure 8 measures.

The ``use_stride`` switch selects between hardware stride transfers and
element-by-element transfers; TOMCATV with/without stride (section 5.4)
is exactly this switch.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import TYPE_CHECKING

import numpy as np

from repro.core.errors import ConfigurationError
from repro.core.stride import ElementStride
from repro.lang.global_array import GlobalArray

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.program import CellContext, Group, LocalArray

#: Run-time cost model (microseconds of base-SPARC work).  Calibrated so
#: the "Run-time system" bars of Figure 8 appear at roughly the paper's
#: magnitudes (2-3% for CG/FT/SP, more for TOMCATV, dominated by the
#: per-message address calculations in the no-stride case).
RT_CALL_US = 60.0      # per runtime library call (partition lookup,
                       # stride-pattern discovery)
RT_PER_MSG_US = 12.0   # per communication operation generated
                       # (global-to-local address conversion)


class VPPRuntime:
    """Per-cell instance of the run-time system."""

    def __init__(self, ctx: "CellContext", *, use_stride: bool = True,
                 call_us: float = RT_CALL_US,
                 per_msg_us: float = RT_PER_MSG_US) -> None:
        self.ctx = ctx
        self.use_stride = use_stride
        self.call_us = call_us
        self.per_msg_us = per_msg_us
        #: Receive flag counting completed readRemote/GET replies.
        self.move_flag = ctx.alloc_flag()
        self._gets_expected = 0

    # ------------------------------------------------------------------
    # Cost accounting
    # ------------------------------------------------------------------

    def _charge(self, messages: int) -> None:
        """Charge run-time system work for one library call that generated
        ``messages`` communication operations."""
        self.ctx.rtsys(self.call_us + self.per_msg_us * messages)

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------

    def global_array(self, shape, dtype=np.float64, *, dist_axis: int = 0,
                     overlap: int = 0) -> GlobalArray:
        """Declare a block-distributed global array (index partition)."""
        return GlobalArray(self.ctx, shape, dtype, dist_axis=dist_axis,
                           overlap=overlap)

    # ------------------------------------------------------------------
    # SPREAD MOVE — collective inter-array assignment (List 1)
    # ------------------------------------------------------------------

    def spread_move_row(self, dest: "LocalArray", src: GlobalArray,
                        row: int) -> None:
        """``A(:) = B(row, :)`` with B row-distributed: every cell gathers
        one full row from its owner.  Contiguous, so a single GET."""
        self._require_2d_axis0(src)
        ncols = src.shape[1]
        if dest.size < ncols:
            raise ConfigurationError(
                f"destination holds {dest.size} elements, row has {ncols}")
        owner = src.owner(row)
        if owner == self.ctx.pe:
            self._charge(0)
            local_row = src.block.data[src.to_local(row), :ncols]
            dest.data.reshape(-1)[:ncols] = local_row
            return
        self._charge(1)
        self.ctx.get(owner, src.block, dest, count=ncols,
                     remote_offset=src.flat_index_on(owner, row, 0),
                     recv_flag=self.move_flag)
        self._gets_expected += 1

    def spread_move_col(self, dest: "LocalArray", src: GlobalArray,
                        col: int) -> None:
        """``A(:) = B(:, col)`` with B row-distributed: the column is
        spread across every cell's block, one element per row — the
        stride case of List 1 ("if loop index J is the 2nd dimension in
        global array B like B(K,J), stride data transfer is required").

        With hardware stride support, one GETS per owner; without it,
        one GET per element.
        """
        self._require_2d_axis0(src)
        nrows = src.shape[0]
        if dest.size < nrows:
            raise ConfigurationError(
                f"destination holds {dest.size} elements, column has {nrows}")
        alloc_cols = src.block.shape[1]
        messages = 0
        for part in range(self.ctx.num_cells):
            lo, hi = src.dist.part_range(part)
            count = hi - lo
            if count == 0:
                continue
            if part == self.ctx.pe:
                dest.data.reshape(-1)[lo:hi] = src.block.data[
                    src.overlap:src.overlap + count, col]
                continue
            base = src.flat_index_on(part, lo, col)
            if self.use_stride:
                self.ctx.get_stride(
                    part, src.block, dest,
                    ElementStride(1, count, alloc_cols),
                    ElementStride(count, 1, count),
                    remote_offset=base, local_offset=lo,
                    recv_flag=self.move_flag)
                self._gets_expected += 1
                messages += 1
            else:
                for i in range(count):
                    self.ctx.get(part, src.block, dest, count=1,
                                 remote_offset=base + i * alloc_cols,
                                 local_offset=lo + i,
                                 recv_flag=self.move_flag)
                self._gets_expected += count
                messages += count
        self._charge(messages)

    def spread_move_block(self, dest: "LocalArray", src: GlobalArray,
                          g_start: int, count: int, *,
                          dest_offset: int = 0) -> None:
        """``A(d:d+count) = B(g:g+count)`` for a 1-D global array: gather a
        global range that may span several owners (one GET per owner)."""
        if len(src.shape) != 1:
            raise ConfigurationError("spread_move_block needs a 1-D array")
        if g_start < 0 or g_start + count > src.shape[0]:
            raise ConfigurationError("global range out of bounds")
        messages = 0
        g = g_start
        while g < g_start + count:
            part = src.owner(g)
            lo, hi = src.dist.part_range(part)
            take = min(hi, g_start + count) - g
            off = dest_offset + (g - g_start)
            if part == self.ctx.pe:
                dest.data.reshape(-1)[off:off + take] = src.block.data[
                    src.to_local(g):src.to_local(g) + take]
            else:
                self.ctx.get(part, src.block, dest, count=take,
                             remote_offset=src.flat_index_on(part, g),
                             local_offset=off, recv_flag=self.move_flag)
                self._gets_expected += 1
                messages += 1
            g += take
        self._charge(messages)

    def write_move_block(self, src_local: "LocalArray", dest: GlobalArray,
                         g_start: int, count: int, *,
                         src_offset: int = 0) -> None:
        """``B(g:g+count) = A(s:s+count)`` for a 1-D global array: scatter
        a local range into the (possibly several) owning cells with
        acknowledged PUTs."""
        if len(dest.shape) != 1:
            raise ConfigurationError("write_move_block needs a 1-D array")
        if g_start < 0 or g_start + count > dest.shape[0]:
            raise ConfigurationError("global range out of bounds")
        messages = 0
        g = g_start
        while g < g_start + count:
            part = dest.owner(g)
            lo, hi = dest.dist.part_range(part)
            take = min(hi, g_start + count) - g
            off = src_offset + (g - g_start)
            if part == self.ctx.pe:
                dest.block.data[dest.to_local(g):dest.to_local(g) + take] = \
                    src_local.data.reshape(-1)[off:off + take]
            else:
                self.ctx.put(part, dest.block, src_local, count=take,
                             dest_offset=dest.flat_index_on(part, g),
                             src_offset=off, ack=True)
                messages += 1
            g += take
        self._charge(messages)

    # ------------------------------------------------------------------
    # OVERLAP FIX — refresh the overlap areas (Figure 2)
    # ------------------------------------------------------------------

    def overlap_fix(self, g: GlobalArray) -> None:
        """Send this cell's boundary data into the neighbours' overlap
        areas.  Along axis 0 the boundary rows are contiguous; along
        axis 1 the boundary columns are strided — "stride data transfer
        is necessary if the overlap area is allocated along the 2nd
        dimension" (section 2.2)."""
        if g.overlap == 0:
            raise ConfigurationError(
                "overlap_fix on an array declared without an overlap area")
        width = g.overlap
        pe = self.ctx.pe
        messages = 0
        left = pe - 1 if g.lo > 0 else None
        right = pe + 1 if g.hi < g.shape[g.dist_axis] else None
        if g.local_extent == 0:
            self._charge(0)
            return
        if len(g.shape) == 1 or g.dist_axis == 0:
            row_elems = 1 if len(g.shape) == 1 else g.block.shape[1]
            if left is not None:
                # My first `width` owned rows land in left's upper halo.
                self.ctx.put(left, g.block, g.block,
                             count=width * row_elems,
                             dest_offset=self._halo_offset(g, left, g.lo),
                             src_offset=g.to_local(g.lo) * row_elems,
                             ack=True)
                messages += 1
            if right is not None:
                start = g.hi - width
                self.ctx.put(right, g.block, g.block,
                             count=width * row_elems,
                             dest_offset=self._halo_offset(g, right, start),
                             src_offset=g.to_local(start) * row_elems,
                             ack=True)
                messages += 1
        else:
            messages += self._overlap_fix_columns(g, left, right, width)
        self._charge(messages)

    def _halo_offset(self, g: GlobalArray, part: int, g_index: int) -> int:
        """Flat offset of (row/col ``g_index``, element 0) in ``part``'s
        block — lands inside that part's overlap area."""
        if len(g.shape) == 1:
            return g._to_local_on(part, g_index)
        if g.dist_axis == 0:
            return g._to_local_on(part, g_index) * g.block.shape[1]
        return g._to_local_on(part, g_index)

    def _overlap_fix_columns(self, g: GlobalArray, left: int | None,
                             right: int | None, width: int) -> int:
        """Column-distributed overlap exchange: strided or element-wise."""
        nrows = g.block.shape[0]
        alloc_cols = g.block.shape[1]
        messages = 0
        sides = []
        if left is not None:
            sides.append((left, g.lo))
        if right is not None:
            sides.append((right, g.hi - width))
        for neighbour, col_start in sides:
            src_off = g.to_local(col_start)
            dst_off = g._to_local_on(neighbour, col_start)
            if self.use_stride:
                stride = ElementStride(width, nrows, alloc_cols)
                self.ctx.put_stride(neighbour, g.block, g.block,
                                    stride, stride,
                                    dest_offset=dst_off, src_offset=src_off,
                                    ack=True)
                messages += 1
            else:
                for row in range(nrows):
                    for w in range(width):
                        flat_src = row * alloc_cols + src_off + w
                        flat_dst = row * alloc_cols + dst_off + w
                        self.ctx.put(neighbour, g.block, g.block, count=1,
                                     dest_offset=flat_dst,
                                     src_offset=flat_src, ack=True)
                        messages += 1
        return messages

    def overlap_fix_mixed(self, g: GlobalArray) -> None:
        """Overlap exchange handled pairwise with the right neighbour:
        PUT my last owned boundary into its overlap area, GET its first
        owned boundary into mine.  Produces the balanced PUTS/GETS mix of
        Table 3's TOMCATV row (an equally valid runtime strategy — each
        boundary still moves exactly once)."""
        if g.overlap == 0:
            raise ConfigurationError(
                "overlap_fix_mixed on an array without an overlap area")
        if len(g.shape) != 2 or g.dist_axis != 1:
            raise ConfigurationError(
                "overlap_fix_mixed implements the Figure 2 layout: a 2-D "
                "array distributed along axis 1")
        width = g.overlap
        right = self.ctx.pe + 1 if g.hi < g.shape[1] else None
        if right is None or g.local_extent == 0:
            self._charge(0)
            return
        nrows = g.block.shape[0]
        alloc_cols = g.block.shape[1]
        messages = 0
        # PUT my last `width` owned columns into right's left halo.
        put_src = g.to_local(g.hi - width)
        put_dst = g._to_local_on(right, g.hi - width)
        # GET right's first `width` owned columns into my right halo.
        get_src = g._to_local_on(right, g.hi)
        get_dst = g.to_local(g.hi)
        if self.use_stride:
            stride = ElementStride(width, nrows, alloc_cols)
            self.ctx.put_stride(right, g.block, g.block, stride, stride,
                                dest_offset=put_dst, src_offset=put_src,
                                ack=True)
            self.ctx.get_stride(right, g.block, g.block, stride, stride,
                                remote_offset=get_src, local_offset=get_dst,
                                recv_flag=self.move_flag)
            self._gets_expected += 1
            messages += 2
        else:
            for row in range(nrows):
                for w in range(width):
                    base = row * alloc_cols + w
                    self.ctx.put(right, g.block, g.block, count=1,
                                 dest_offset=base + put_dst,
                                 src_offset=base + put_src, ack=True)
                    self.ctx.get(right, g.block, g.block, count=1,
                                 remote_offset=base + get_src,
                                 local_offset=base + get_dst,
                                 recv_flag=self.move_flag)
                    self._gets_expected += 1
                    messages += 2
        self._charge(messages)

    # ------------------------------------------------------------------
    # MOVEWAIT — completion of outstanding collective moves
    # ------------------------------------------------------------------

    def movewait(self) -> Iterator[None]:
        """Complete all outstanding SPREAD MOVE / OVERLAP FIX traffic:
        wait for GET replies, collect PUT acknowledgments, and barrier —
        the Ack & Barrier model of section 2.2."""
        self._charge(0)
        yield from self.ctx.flag_wait(self.move_flag, self._gets_expected)
        yield from self.ctx.finish_puts()
        yield from self.ctx.barrier()

    # ------------------------------------------------------------------
    # Global reductions (run-time library wrappers)
    # ------------------------------------------------------------------

    def gop(self, value: float, op: str = "sum",
            group: "Group | None" = None) -> Iterator[None]:
        """Scalar global reduction through the run-time library."""
        self._charge(0)
        result = yield from self.ctx.gop(value, op, group)
        return result

    def vgop(self, vector: np.ndarray, op: str = "sum",
             group: "Group | None" = None) -> Iterator[None]:
        """Vector global reduction through the run-time library."""
        self._charge(0)
        result = yield from self.ctx.vgop(vector, op, group)
        return result

    # ------------------------------------------------------------------

    @staticmethod
    def _require_2d_axis0(src: GlobalArray) -> None:
        if len(src.shape) != 2 or src.dist_axis != 0:
            raise ConfigurationError(
                "this SPREAD MOVE form needs a 2-D array distributed "
                "along axis 0")
