"""The functional AP1000+ machine: configuration, SPMD scheduler, the
per-cell programming interface, and ring buffers for SEND/RECEIVE."""

from repro.machine.config import (
    MEGABYTE,
    PEAK_MFLOPS_PER_CELL,
    SPARC_US_PER_FLOP,
    MachineConfig,
)
from repro.machine.machine import Machine
from repro.machine.program import (
    CellContext,
    Group,
    LocalArray,
    WriteThroughArray,
)
from repro.machine.shmem import SharedMemory
from repro.machine.ringbuffer import DEFAULT_RING_BYTES, RingBuffer

__all__ = [
    "MEGABYTE",
    "PEAK_MFLOPS_PER_CELL",
    "SPARC_US_PER_FLOP",
    "MachineConfig",
    "Machine",
    "CellContext",
    "Group",
    "LocalArray",
    "WriteThroughArray",
    "SharedMemory",
    "DEFAULT_RING_BYTES",
    "RingBuffer",
]
