"""Distributed shared memory through the 36-bit physical space (§4.2).

"Each cell uses half of this address space for local memory space and
the other half for distributed shared memory space.  32 gigabytes of
shared memory space is divided into blocks equally corresponding to each
cell ...  To access the shared memory space, the MSC+ generates
parameters for remote load/store and writes them to the remote access
queue."

:class:`SharedMemory` gives a cell's program exactly that view: it forms
36-bit shared-space addresses for (cell, array, element) coordinates and
performs LOAD/STORE on them.  An address that resolves to the accessing
cell itself is served from local memory without any communication
("objects in local memory space can be accessed by the owner without
interprocessor communication"); a remote address becomes a hardware
remote load (blocking) or remote store (non-blocking, acknowledged by
the MSC+).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.errors import AddressError
from repro.hardware.memory import AddressMap

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.program import CellContext, LocalArray


class SharedMemory:
    """One cell's window onto the machine-wide shared address space."""

    def __init__(self, ctx: "CellContext") -> None:
        self.ctx = ctx
        self.amap = AddressMap(
            num_cells=ctx.machine.config.num_cells,
            memory_per_cell=ctx.machine.config.memory_per_cell)
        self.local_accesses = 0
        self.remote_loads = 0
        self.remote_stores = 0

    # ------------------------------------------------------------------
    # Address formation
    # ------------------------------------------------------------------

    def address_of(self, cell: int, array: "LocalArray",
                   offset: int = 0) -> int:
        """The 36-bit shared-space physical address of one element of
        ``cell``'s instance of a symmetric array."""
        local = array.element_addr(offset)
        if local >= self.amap.shared_window_bytes:
            raise AddressError(
                f"local address {local:#x} lies beyond the exported "
                f"window of {self.amap.shared_window_bytes} bytes; only "
                "the first half of cell memory is mapped into shared "
                "space")
        return self.amap.shared_base(cell) + local

    def resolve(self, shared_addr: int) -> tuple[int, int]:
        """(owner cell, local byte offset) of a shared-space address —
        the MSC+'s upper-bits-to-cell-id translation."""
        return self.amap.resolve_shared(shared_addr)

    # ------------------------------------------------------------------
    # LOAD / STORE
    # ------------------------------------------------------------------

    def load(self, shared_addr: int, dtype=np.float64):
        """LOAD from shared space.

        Local addresses are plain memory reads; remote addresses stall
        the processor on a hardware remote load (privileged over
        PUT/GET in the MSC+ queues).
        """
        dtype = np.dtype(dtype)
        cell, local = self.resolve(shared_addr)
        if cell == self.ctx.pe:
            self.local_accesses += 1
            raw = self.ctx.hw.memory.read(local, dtype.itemsize)
        else:
            self.remote_loads += 1
            from repro.trace.events import EventKind
            self.ctx._trace(EventKind.REMOTE_LOAD, partner=cell,
                            size=dtype.itemsize)
            raw = self.ctx.machine.remote_load(self.ctx.pe, cell, local,
                                               dtype.itemsize)
        return np.frombuffer(raw, dtype=dtype)[0]

    def store(self, shared_addr: int, value, dtype=np.float64) -> None:
        """STORE to shared space (non-blocking when remote; the MSC+
        acknowledges automatically)."""
        dtype = np.dtype(dtype)
        raw = np.array([value], dtype=dtype).tobytes()
        cell, local = self.resolve(shared_addr)
        if cell == self.ctx.pe:
            self.local_accesses += 1
            self.ctx.hw.memory.write(local, raw)
            return
        self.remote_stores += 1
        from repro.trace.events import EventKind
        self.ctx._trace(EventKind.REMOTE_STORE, partner=cell,
                        size=dtype.itemsize)
        self.ctx.machine.remote_store(self.ctx.pe, cell, local, raw)

    def load_element(self, cell: int, array: "LocalArray", offset: int,
                     dtype=None):
        """Convenience: LOAD element ``offset`` of ``cell``'s array."""
        dtype = dtype or array.dtype
        return self.load(self.address_of(cell, array, offset), dtype)

    def store_element(self, cell: int, array: "LocalArray", offset: int,
                      value) -> None:
        """Convenience: STORE element ``offset`` of ``cell``'s array."""
        self.store(self.address_of(cell, array, offset), value, array.dtype)
