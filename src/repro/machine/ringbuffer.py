"""Ring buffers for the SEND/RECEIVE model (section 4.3).

The AP1000+ keeps receive buffers — *ring buffers* — in main memory.  SEND
uses the same hardware mechanism as PUT but targets the destination's ring
buffer instead of a user address; RECEIVE searches the ring buffer and
copies the matching message into the user area.  "If the ring buffer
becomes full, the MSC+ interrupts the operating system, which then
allocates a new buffer."

Vector global reductions execute directly out of the ring buffer — the
data is used once, so no copy to a user area is needed, "which eliminates
the message copy overhead" (section 4.5).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.network.packet import Packet

#: Default ring buffer capacity in bytes.
DEFAULT_RING_BYTES = 256 * 1024


@dataclass
class RingBuffer:
    """One cell's receive ring buffer."""

    capacity_bytes: int = DEFAULT_RING_BYTES
    _messages: deque[Packet] = field(default_factory=deque)
    bytes_buffered: int = 0
    allocation_interrupts: int = 0
    extra_buffers: int = 0
    deposits: int = 0
    copies_out: int = 0
    high_water_bytes: int = 0

    def deposit(self, packet: Packet) -> None:
        """The MSC+ writes an arriving SEND message into the ring."""
        size = packet.payload_bytes
        while self.bytes_buffered + size > self.current_capacity:
            # Full: the MSC+ interrupts the OS, which allocates a new buffer.
            self.extra_buffers += 1
            self.allocation_interrupts += 1
        self._messages.append(packet)
        self.bytes_buffered += size
        self.deposits += 1
        self.high_water_bytes = max(self.high_water_bytes, self.bytes_buffered)

    @property
    def current_capacity(self) -> int:
        return self.capacity_bytes * (1 + self.extra_buffers)

    def search(self, src: int | None = None,
               context: int | None = None) -> Packet | None:
        """Find (without removing) the oldest message matching the filters."""
        for packet in self._messages:
            if src is not None and packet.src != src:
                continue
            if context is not None and packet.context != context:
                continue
            return packet
        return None

    def receive(self, src: int | None = None,
                context: int | None = None) -> Packet | None:
        """RECEIVE: search and remove the oldest matching message.

        Returns None when nothing matches (the caller blocks and retries).
        The copy into the user area is the receiver's job; this method
        counts it so the copy-elimination claim of section 4.5 is testable.
        """
        found = self.search(src=src, context=context)
        if found is None:
            return None
        self._messages.remove(found)
        self.bytes_buffered -= found.payload_bytes
        self.copies_out += 1
        return found

    def consume_in_place(self, src: int | None = None,
                         context: int | None = None) -> Packet | None:
        """Use a message directly out of the ring without the user-area copy
        (the vector-reduction path of section 4.5)."""
        found = self.search(src=src, context=context)
        if found is None:
            return None
        self._messages.remove(found)
        self.bytes_buffered -= found.payload_bytes
        return found

    def __len__(self) -> int:
        return len(self._messages)
