"""The host workstation and B-net data distribution (Figure 4).

"The host is a Sun workstation.  Cells are connected by three
independent networks: ... a broadcast network, or B-net, for broadcast
communication and data distribution and collection."

The host loads programs and initial data onto the cells and collects
results; in the paper's methodology this happens *outside* the measured
region (the probes instrument the communication and synchronization
libraries, not program loading), so host traffic is functional-only and
deliberately not traced.

Cell-side, programs receive distributed data with
:meth:`CellContext-style <HostChannel.receive>` blocking reads; host
broadcasts are seen by every cell in the same total order (the B-net is
one shared bus).
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import TYPE_CHECKING

import numpy as np

from repro.core.errors import CommunicationError
from repro.network.bnet import HOST_ID, BNet
from repro.network.packet import Packet, PacketKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.machine import Machine
    from repro.machine.program import CellContext


class Host:
    """The front-end workstation driving a machine over the B-net."""

    def __init__(self, machine: "Machine") -> None:
        self.machine = machine
        self.bnet: BNet = machine.bnet
        self._collected: dict[int, list[bytes]] = {}

    # ------------------------------------------------------------------
    # Distribution (host -> cells)
    # ------------------------------------------------------------------

    def broadcast(self, data: np.ndarray | bytes, *, context: int = 0) -> None:
        """Broadcast one payload to every cell (total order)."""
        payload = (data.tobytes() if isinstance(data, np.ndarray)
                   else bytes(data))
        self.bnet.broadcast(Packet(
            kind=PacketKind.SEND, src=HOST_ID, dst=-2,
            payload_bytes=len(payload), data=payload, context=context))
        self.machine.wake_all()

    def scatter(self, chunks, *, context: int = 0) -> None:
        """Distribute one chunk per cell (``chunks[pe]`` goes to cell
        ``pe``) over the shared bus."""
        if len(chunks) != self.machine.config.num_cells:
            raise CommunicationError(
                f"scatter needs one chunk per cell "
                f"({self.machine.config.num_cells}), got {len(chunks)}")
        packets = []
        for pe, chunk in enumerate(chunks):
            payload = (chunk.tobytes() if isinstance(chunk, np.ndarray)
                       else bytes(chunk))
            packets.append(Packet(
                kind=PacketKind.SEND, src=HOST_ID, dst=pe,
                payload_bytes=len(payload), data=payload, context=context))
        self.bnet.scatter(packets)
        self.machine.wake_all()

    def scatter_array(self, array: np.ndarray, *, context: int = 0) -> None:
        """Block-distribute an array along its first axis (the classic
        host-side data load)."""
        from repro.lang.distribution import BlockDistribution

        dist = BlockDistribution(array.shape[0],
                                 self.machine.config.num_cells)
        self.scatter([array[slice(*dist.part_range(pe))]
                      for pe in range(self.machine.config.num_cells)],
                     context=context)

    # ------------------------------------------------------------------
    # Collection (cells -> host)
    # ------------------------------------------------------------------

    def deposit(self, pe: int, payload: bytes) -> None:
        """Called by the cell side to send a result to the host."""
        self._collected.setdefault(pe, []).append(payload)

    def collect(self, dtype=np.float64) -> dict[int, np.ndarray]:
        """Everything the cells sent up, decoded per cell."""
        return {pe: np.concatenate([
            np.frombuffer(chunk, dtype=dtype) for chunk in chunks])
            for pe, chunks in sorted(self._collected.items())}

    def collect_array(self, dtype=np.float64) -> np.ndarray:
        """Concatenate the per-cell results in cell order (the inverse of
        :meth:`scatter_array` for 1-D payloads)."""
        per_cell = self.collect(dtype)
        if len(per_cell) != self.machine.config.num_cells:
            missing = set(range(self.machine.config.num_cells)) - set(per_cell)
            raise CommunicationError(
                f"collection incomplete; nothing from cells {sorted(missing)}")
        return np.concatenate([per_cell[pe] for pe in sorted(per_cell)])


class HostChannel:
    """Cell-side access to host traffic (used inside programs)."""

    def __init__(self, ctx: "CellContext", host: Host) -> None:
        self.ctx = ctx
        self.host = host

    def receive(self, *, context: int | None = None) -> Iterator[None]:
        """Blocking receive of the next host packet for this cell."""
        bnet = self.host.bnet
        while bnet.pending(self.ctx.pe) == 0:
            yield
        self.ctx.machine.note_progress()
        packet = bnet.receive(self.ctx.pe)
        if context is not None and packet.context != context:
            raise CommunicationError(
                f"cell {self.ctx.pe} expected host context {context}, got "
                f"{packet.context}")
        return packet

    def receive_array(self, dtype=np.float64, *,
                      context: int | None = None) -> Iterator[None]:
        packet = yield from self.receive(context=context)
        return np.frombuffer(packet.data or b"", dtype=dtype).copy()

    def send_result(self, data: np.ndarray | bytes) -> None:
        """Send a result up to the host (collection)."""
        payload = (data.tobytes() if isinstance(data, np.ndarray)
                   else bytes(data))
        self.host.deposit(self.ctx.pe, payload)
