"""The functional AP1000+ machine: cells, networks, and the SPMD scheduler.

The machine plays the role the *real AP1000 hardware* played in the
paper's methodology: it executes applications for real (bytes move, flags
count, barriers synchronize) while the probe layer records the trace that
MLSim later replays under different timing models.

Scheduling is cooperative.  Each cell's program is a generator; the
scheduler round-robins over unfinished programs, resuming each until it
either finishes or yields (blocks).  Blocking helpers re-check their
condition on every resume, and bump a progress counter when they pass, so
the scheduler can distinguish "still working" from deadlock.
"""

from __future__ import annotations

import functools
import inspect
from collections.abc import Callable
from typing import Any

import numpy as np

from repro.core.completion import AckPolicy
from repro.core.errors import CommunicationError, ConfigurationError, DeadlockError
from repro.core.flags import flag_area_end
from repro.hardware.cell import HardwareCell
from repro.hardware.msc import Command, CommandKind
from repro.machine.config import MachineConfig
from repro.machine.program import CellContext, Group, LocalArray
from repro.machine.ringbuffer import RingBuffer
from repro.network.bnet import BNet
from repro.network.packet import PacketKind, StrideSpec
from repro.network.snet import SNet
from repro.network.tnet import TNet
from repro.network.topology import TorusTopology
from repro.trace import sanitize as trace_sanitize
from repro.trace.buffer import TraceBuffer
from repro.core.collectives import combine

#: Heap allocations start above the flag area, page-aligned.
_HEAP_ALIGN = 64


def _align(value: int, alignment: int) -> int:
    return (value + alignment - 1) // alignment * alignment


class _BarrierState:
    __slots__ = ("generation", "arrived")

    def __init__(self) -> None:
        self.generation = 0
        self.arrived: set[int] = set()


class _ReductionState:
    __slots__ = ("per_pe_generation", "slots", "results", "fetches")

    def __init__(self) -> None:
        self.per_pe_generation: dict[int, int] = {}
        self.slots: dict[int, dict[int, Any]] = {}
        self.results: dict[int, Any] = {}
        self.fetches: dict[int, int] = {}


class Machine:
    """A functional AP1000+ with ``config.num_cells`` cells."""

    def __init__(self, config: MachineConfig | int | None = None, *,
                 ack_policy: str = AckPolicy.EVERY_PUT) -> None:
        if config is None:
            config = MachineConfig()
        elif isinstance(config, int):
            config = MachineConfig(num_cells=config)
        self.config = config
        self.ack_policy = ack_policy
        n = config.num_cells
        self.topology = TorusTopology.for_cells(n)
        self.tnet = TNet(self.topology)
        self.snet = SNet(n)
        self.bnet = BNet(n)
        self.hw_cells = [
            HardwareCell.build(pe, self.tnet, config.memory_per_cell)
            for pe in range(n)
        ]
        self.rings = [RingBuffer() for _ in range(n)]
        for cell, ring in zip(self.hw_cells, self.rings):
            cell.msc.send_sink = ring.deposit
        self.trace = TraceBuffer(num_pes=n, capacity=config.trace_capacity)
        #: Byte-range annotation for repro.check: on when the config asks
        #: for it or when the ambient sanitizer switch is set.
        self.sanitize = bool(config.sanitize or trace_sanitize.active())
        self.world_group = Group(gid=0, members=tuple(range(n)))
        self._heap_next = [_align(flag_area_end(), _HEAP_ALIGN)] * n
        # Private (non-symmetric) allocations grow downward from the top
        # of DRAM so they never desynchronize the symmetric heap.
        self._private_next = [config.memory_per_cell] * n
        self._barriers: dict[int, _BarrierState] = {}
        self._reductions: dict[int, _ReductionState] = {}
        self._dirty: set[int] = set()
        #: Progress counter; blocking helpers bump it when their condition
        #: passes, packet deliveries bump it too.
        self.progress = 0

    # ------------------------------------------------------------------
    # Memory allocation
    # ------------------------------------------------------------------

    def alloc_array(self, pe: int, shape, dtype,
                    align: int = _HEAP_ALIGN) -> LocalArray:
        dtype = np.dtype(dtype)
        shape = (shape,) if isinstance(shape, int) else tuple(shape)
        nbytes = int(np.prod(shape)) * dtype.itemsize if shape else dtype.itemsize
        nbytes = max(nbytes, dtype.itemsize)
        addr = _align(self._heap_next[pe], align)
        end = addr + nbytes
        if end > self._private_next[pe]:
            raise ConfigurationError(
                f"cell {pe} out of memory: heap would reach {end} bytes "
                f"against the private area at {self._private_next[pe]}")
        self._heap_next[pe] = _align(end, _HEAP_ALIGN)
        raw = self.hw_cells[pe].memory.view(addr, nbytes)
        data = raw.view(dtype).reshape(shape)
        return LocalArray(data=data, addr=addr)

    def alloc_private(self, pe: int, nbytes: int,
                      align: int = _HEAP_ALIGN) -> LocalArray:
        """Allocate a per-cell *private* byte buffer from the top of DRAM.

        Private areas (e.g. write-through page copies) may be allocated
        by any subset of cells without breaking symmetric-heap address
        agreement, because they never touch the upward-growing heap.
        """
        if nbytes <= 0:
            raise ConfigurationError("private allocation must be non-empty")
        addr = self._private_next[pe] - nbytes
        addr -= addr % align
        if addr < self._heap_next[pe]:
            raise ConfigurationError(
                f"cell {pe} out of memory: private area would reach {addr} "
                f"against the heap at {self._heap_next[pe]}")
        self._private_next[pe] = addr
        raw = self.hw_cells[pe].memory.view(addr, nbytes)
        return LocalArray(data=raw, addr=addr)

    # ------------------------------------------------------------------
    # Packet movement
    # ------------------------------------------------------------------

    def mark_dirty(self, pe: int) -> None:
        self._dirty.add(pe)

    def note_progress(self) -> None:
        self.progress += 1

    def pump(self) -> None:
        """Move the machine to communication quiescence.

        Drains every dirty MSC+ queue and every in-flight packet; GET
        requests delivered to a cell dirty that cell (its MSC+ must send
        the reply) so the loop runs until nothing moves.
        """
        while True:
            dirty = self._dirty
            if not dirty and self.tnet.injected_count == self.tnet.delivered_count:
                return
            self._dirty = set()
            for pe in dirty:
                msc = self.hw_cells[pe].msc
                msc.pump_send()
                msc.pump_replies()
            for packet in self.tnet.drain_all():
                msc = self.hw_cells[packet.dst].msc
                msc.deliver(packet)
                self.progress += 1
                if packet.kind in (PacketKind.GET_REQUEST,
                                   PacketKind.REMOTE_LOAD):
                    self._dirty.add(packet.dst)

    # ------------------------------------------------------------------
    # Collectives
    # ------------------------------------------------------------------

    def barrier_arrive(self, group: Group, pe: int) -> int:
        state = self._barriers.setdefault(group.gid, _BarrierState())
        if pe in state.arrived:
            raise CommunicationError(
                f"cell {pe} arrived twice at barrier of group {group.gid}")
        if pe not in group:
            raise CommunicationError(
                f"cell {pe} synchronizing with group {group.gid} it does "
                "not belong to")
        state.arrived.add(pe)
        generation = state.generation
        if len(state.arrived) == group.size:
            state.arrived.clear()
            state.generation += 1
            self.progress += 1
            if group.gid == 0:
                # The all-cells barrier is the hardware S-net's job.
                for member in group.members:
                    self.snet.arrive(member)
        return generation

    def barrier_passed(self, gid: int, generation: int) -> bool:
        state = self._barriers.get(gid)
        return state is not None and state.generation > generation

    def reduce(self, group: Group, pe: int, value: Any, op: str):
        """Generator implementing one member's part of a reduction."""
        if pe not in group:
            raise CommunicationError(
                f"cell {pe} reducing with group {group.gid} it does not "
                "belong to")
        state = self._reductions.setdefault(group.gid, _ReductionState())
        generation = state.per_pe_generation.get(pe, 0)
        state.per_pe_generation[pe] = generation + 1
        slot = state.slots.setdefault(generation, {})
        if pe in slot:
            raise CommunicationError(
                f"cell {pe} contributed twice to reduction {generation} "
                f"of group {group.gid}")
        slot[pe] = value
        if len(slot) == group.size:
            contributions = [slot[m] for m in group.members]
            state.results[generation] = functools.reduce(
                lambda a, b: _combine_values(op, a, b), contributions)
            state.fetches[generation] = 0
            del state.slots[generation]
            self.progress += 1
        while generation not in state.results:
            yield
        self.note_progress()
        result = state.results[generation]
        state.fetches[generation] += 1
        if state.fetches[generation] == group.size:
            del state.results[generation]
            del state.fetches[generation]
        return result

    # ------------------------------------------------------------------
    # Distributed shared memory
    # ------------------------------------------------------------------

    def remote_store(self, src: int, dst: int, remote_addr: int,
                     data: bytes) -> None:
        """Issue a hardware remote store from ``src`` to ``dst``."""
        scratch = self.alloc_scratch(src, data)
        command = Command(
            kind=CommandKind.REMOTE_STORE, dst=dst, raddr=remote_addr,
            laddr=scratch.addr, send_stride=StrideSpec.contiguous(len(data)),
            recv_stride=StrideSpec.contiguous(len(data)))
        self.hw_cells[src].msc.issue(command)
        self.mark_dirty(src)
        self.pump()

    def remote_load(self, src: int, target: int, remote_addr: int,
                    size: int) -> bytes:
        """Blocking remote load: returns the bytes read from ``target``."""
        scratch = self.alloc_scratch(src, bytes(size))
        command = Command(
            kind=CommandKind.REMOTE_LOAD, dst=target, raddr=remote_addr,
            laddr=scratch.addr, send_stride=StrideSpec.contiguous(size),
            recv_stride=StrideSpec.contiguous(size))
        self.hw_cells[src].msc.issue(command)
        self.mark_dirty(src)
        self.pump()
        reply = self.hw_cells[src].msc.take_load_reply()
        if reply is None:
            raise CommunicationError(
                f"remote load from cell {target} produced no reply")
        assert reply.data is not None
        return reply.data

    _SCRATCH_BYTES = 4096

    def alloc_scratch(self, pe: int, data: bytes) -> LocalArray:
        """A small per-cell staging buffer for shared-memory traffic."""
        if len(data) > self._SCRATCH_BYTES:
            raise CommunicationError(
                f"remote access of {len(data)} bytes exceeds the "
                f"{self._SCRATCH_BYTES}-byte staging buffer; use PUT/GET")
        scratch = getattr(self, "_scratch", None)
        if scratch is None:
            scratch = [self.alloc_array(p, self._SCRATCH_BYTES, np.uint8)
                       for p in range(self.config.num_cells)]
            self._scratch = scratch
        buf = scratch[pe]
        if data:
            buf.data[:len(data)] = np.frombuffer(data, dtype=np.uint8)
        return buf

    # ------------------------------------------------------------------
    # SPMD scheduling
    # ------------------------------------------------------------------

    def run(self, program: Callable, *args, **kwargs) -> list[Any]:
        """Execute ``program(ctx, *args, **kwargs)`` on every cell.

        Returns the per-cell return values.  Raises
        :class:`~repro.core.errors.DeadlockError` when every unfinished
        program is blocked and nothing can make progress.
        """
        n = self.config.num_cells
        contexts = [CellContext(self, pe) for pe in range(n)]
        results: list[Any] = [None] * n
        generators: dict[int, Any] = {}
        for pe in range(n):
            outcome = program(contexts[pe], *args, **kwargs)
            if inspect.isgenerator(outcome):
                generators[pe] = outcome
            else:
                results[pe] = outcome
        stalled_passes = 0
        while generators:
            before = self.progress
            for pe in sorted(generators):
                try:
                    next(generators[pe])
                except StopIteration as stop:
                    results[pe] = stop.value
                    del generators[pe]
                    self.progress += 1
            if self.progress == before:
                stalled_passes += 1
                if stalled_passes >= 3:
                    raise DeadlockError(self._deadlock_report(generators))
            else:
                stalled_passes = 0
        self.pump()
        return results

    def _deadlock_report(self, generators: dict[int, Any]) -> str:
        blocked = sorted(generators)
        lines = [
            f"deadlock: {len(blocked)} cell(s) blocked with no progress "
            f"possible: {blocked[:16]}{'...' if len(blocked) > 16 else ''}"
        ]
        for gid, state in self._barriers.items():
            if state.arrived:
                lines.append(
                    f"  barrier group {gid}: {len(state.arrived)} arrived, "
                    f"waiting for more")
        in_flight = self.tnet.injected_count - self.tnet.delivered_count
        lines.append(f"  packets in flight: {in_flight}")
        return "\n".join(lines)


def _combine_values(op: str, left: Any, right: Any) -> Any:
    """Reduction combine supporting scalars and numpy arrays."""
    if isinstance(left, np.ndarray) or isinstance(right, np.ndarray):
        if op == "sum":
            return left + right
        if op == "max":
            return np.maximum(left, right)
        if op == "min":
            return np.minimum(left, right)
        if op == "prod":
            return left * right
        raise ConfigurationError(f"vector reduction op {op!r} not supported")
    return combine(op, left, right)
