"""The functional AP1000+ machine: cells, networks, and the SPMD scheduler.

The machine plays the role the *real AP1000 hardware* played in the
paper's methodology: it executes applications for real (bytes move, flags
count, barriers synchronize) while the probe layer records the trace that
MLSim later replays under different timing models.

Scheduling is cooperative.  Each cell's program is a generator; the
scheduler round-robins over unfinished programs, resuming each until it
either finishes or yields (blocks).  Blocking helpers re-check their
condition on every resume, and bump a progress counter when they pass, so
the scheduler can distinguish "still working" from deadlock.
"""

from __future__ import annotations

import contextlib
import functools
import heapq
import inspect
import random
from collections.abc import Callable
from typing import Any

import numpy as np

from repro.ckpt import policy as _ckpt_policy
from repro.core.completion import AckPolicy
from repro.core.errors import (
    CheckpointInterrupt,
    CommTimeoutError,
    CommunicationError,
    ConfigurationError,
    DeadlockError,
)
from repro.core.flags import flag_area_end
from repro.faults.injector import FaultyBNet, FaultyTNet
from repro.faults.plan import active_plan as _active_fault_plan
from repro.faults.transport import ReliableTransport
from repro.hardware.cell import HardwareCell
from repro.hardware.msc import Command, CommandKind
from repro.machine.config import MachineConfig
from repro.machine.program import CellContext, Group, LocalArray
from repro.machine.ringbuffer import RingBuffer
from repro.network.bnet import BNet
from repro.network.packet import PacketKind, StrideSpec
from repro.network.snet import SNet
from repro.network.tnet import TNet
from repro.network.topology import TorusTopology
from repro.obs.observer import MachineObserver
from repro.obs.observer import active as _obs_active
from repro.trace import sanitize as trace_sanitize
from repro.trace.buffer import TraceBuffer
from repro.trace.events import EventKind, TraceEvent
from repro.core.collectives import combine

#: Heap allocations start above the flag area, page-aligned.
_HEAP_ALIGN = 64


def _align(value: int, alignment: int) -> int:
    return (value + alignment - 1) // alignment * alignment


class _BarrierState:
    __slots__ = ("generation", "arrived", "members")

    def __init__(self, members: tuple[int, ...] = ()) -> None:
        self.generation = 0
        self.arrived: set[int] = set()
        self.members = tuple(members)


class _ReductionState:
    __slots__ = ("per_pe_generation", "slots", "results", "fetches",
                 "members", "ops")

    def __init__(self, members: tuple[int, ...] = ()) -> None:
        self.per_pe_generation: dict[int, int] = {}
        self.slots: dict[int, dict[int, Any]] = {}
        self.results: dict[int, Any] = {}
        self.fetches: dict[int, int] = {}
        self.members = tuple(members)
        #: Reduction op per pending generation (needed to finish a
        #: degraded reduction when a kill, not a contribution, completes
        #: it).
        self.ops: dict[int, str] = {}


class Machine:
    """A functional AP1000+ with ``config.num_cells`` cells."""

    def __init__(self, config: MachineConfig | int | None = None, *,
                 ack_policy: str = AckPolicy.EVERY_PUT) -> None:
        if config is None:
            config = MachineConfig()
        elif isinstance(config, int):
            config = MachineConfig(num_cells=config)
        self.config = config
        self.ack_policy = ack_policy
        n = config.num_cells
        self.topology = TorusTopology.for_cells(n)
        #: Fault-injection schedule: explicit config wins, else ambient.
        plan = (config.fault_plan if config.fault_plan is not None
                else _active_fault_plan())
        self.fault_plan = plan
        if plan is not None:
            self.fault_rng = random.Random(plan.seed)
            self.tnet: TNet = FaultyTNet(self.topology, plan,
                                         self.fault_rng)
            self.bnet: BNet = FaultyBNet(n, plan, self.fault_rng,
                                         self.tnet.stats)
        else:
            self.fault_rng = None
            self.tnet = TNet(self.topology)
            self.bnet = BNet(n)
        self.snet = SNet(n)
        self.hw_cells = [
            HardwareCell.build(pe, self.tnet, config.memory_per_cell)
            for pe in range(n)
        ]
        self.rings = [RingBuffer() for _ in range(n)]
        for cell, ring in zip(self.hw_cells, self.rings):
            cell.msc.send_sink = ring.deposit
        self.trace = TraceBuffer(num_pes=n, capacity=config.trace_capacity)
        #: Byte-range annotation for repro.check: on when the config asks
        #: for it or when the ambient sanitizer switch is set.
        self.sanitize = bool(config.sanitize or trace_sanitize.active())
        #: Telemetry observer (repro.obs): None unless the config or the
        #: ambient switch asks for it, so unobserved hot paths pay one
        #: ``is None`` test.
        self.obs = (MachineObserver(self)
                    if (config.observe or _obs_active()) else None)
        if self.obs is not None:
            self.tnet.observer = self.obs
            self.bnet.observer = self.obs
        self.world_group = Group(gid=0, members=tuple(range(n)))
        self._heap_next = [_align(flag_area_end(), _HEAP_ALIGN)] * n
        # Private (non-symmetric) allocations grow downward from the top
        # of DRAM so they never desynchronize the symmetric heap.
        self._private_next = [config.memory_per_cell] * n
        self._barriers: dict[int, _BarrierState] = {}
        self._reductions: dict[int, _ReductionState] = {}
        self._dirty: set[int] = set()
        #: Progress counter; blocking helpers bump it when their condition
        #: passes, packet deliveries bump it too.
        self.progress = 0
        #: Wake set of the batched scheduler (None outside a batched
        #: run).  Every state change that can unblock a parked cell must
        #: name the cells it may have woken here; see :meth:`wake`.
        self._wake: set[int] | None = None
        #: Cells the fault plan has killed (mirrored into the T-net).
        self.killed: set[int] = set()
        #: Live flag waits, pe -> (flag id, target, flag addr); feeds the
        #: deadlock/timeout report with "waiting on flag F (cur/target)".
        self._flag_waits: dict[int, tuple[int, int, int]] = {}
        #: Scheduler resumptions per cell (drives kill/stall timing).
        self._resumes = [0] * n
        self._stalls: dict[int, list[Any]] = {}
        self._stall_remaining: dict[int, int] = {}
        if plan is not None:
            for spec in plan.stalls:
                self._stalls.setdefault(spec.pe, []).append(spec)
        self._active_generators: dict[int, Any] | None = None
        #: Reliable link layer; None on a perfect machine.
        self.transport = (ReliableTransport(self.tnet, plan, self)
                          if plan is not None else None)
        if self.transport is not None:
            self.tnet.transport = self.transport
        for pe, cell in enumerate(self.hw_cells):
            msc = cell.msc
            for queue in msc.all_queues():
                queue.on_spill = functools.partial(self._record_spill, pe)
                if plan is not None:
                    if plan.queue_capacity_words is not None:
                        queue.capacity_words = plan.queue_capacity_words
                    if plan.spill_buffer_words is not None:
                        queue.spill_buffer_words = plan.spill_buffer_words
                    if plan.max_spill_buffers is not None:
                        queue.max_spill_buffers = plan.max_spill_buffers
        #: Checkpoint gate (repro.ckpt): explicit config wins, else the
        #: ambient policy.  ``_ckpt_threshold`` is the site count each
        #: cell parks at; None means the gate is disarmed.
        ckpt = _ckpt_policy.active_policy()
        every = config.checkpoint_every
        ckpt_dir = config.checkpoint_dir
        at_site = None
        stop_after = False
        if ckpt is not None:
            if every is None:
                every = ckpt.every
            if ckpt_dir is None:
                ckpt_dir = ckpt.directory
            at_site = ckpt.at_site
            stop_after = ckpt.stop_after_capture
        self.checkpoint_dir = ckpt_dir
        self._ckpt_every = every
        self._ckpt_threshold = at_site if at_site is not None else every
        self._ckpt_stop_after = stop_after
        self._ckpt_counts = [0] * n
        #: One-shot gate armed by a SIGTERM/SIGINT interrupt request:
        #: every cell parks at its very next checkpoint site.
        self._ckpt_oneshot = False
        self._gate_parked: set[int] = set()
        self._finished_cells: set[int] = set()
        #: Monotonic capture counter; names snapshot directories.
        self.ckpt_seq = 0
        #: Most recent in-memory capture (a MachineSnapshot), kept even
        #: when no checkpoint directory is configured.
        self.last_snapshot: Any = None
        #: Workload identity recorded into snapshot headers so
        #: ``repro run --resume-from`` knows what to re-launch.
        self.ckpt_meta: dict[str, Any] | None = None
        self._active_contexts: list[CellContext] | None = None
        #: Restore payloads staged by repro.ckpt.restore_machine and
        #: consumed by the next run(): per-cell app loop state, context
        #: counters, and the killed set whose generators must be closed.
        self._restore_states: dict[int, dict[str, Any]] | None = None
        self._restore_ctx: dict[int, dict[str, Any]] | None = None
        self._restore_killed: set[int] | None = None

    # ------------------------------------------------------------------
    # Memory allocation
    # ------------------------------------------------------------------

    def alloc_array(self, pe: int, shape, dtype,
                    align: int = _HEAP_ALIGN) -> LocalArray:
        dtype = np.dtype(dtype)
        shape = (shape,) if isinstance(shape, int) else tuple(shape)
        nbytes = (int(np.prod(shape)) * dtype.itemsize if shape
                  else dtype.itemsize)
        nbytes = max(nbytes, dtype.itemsize)
        addr = _align(self._heap_next[pe], align)
        end = addr + nbytes
        if end > self._private_next[pe]:
            raise ConfigurationError(
                f"cell {pe} out of memory: heap would reach {end} bytes "
                f"against the private area at {self._private_next[pe]}")
        self._heap_next[pe] = _align(end, _HEAP_ALIGN)
        raw = self.hw_cells[pe].memory.view(addr, nbytes)
        data = raw.view(dtype).reshape(shape)
        return LocalArray(data=data, addr=addr)

    def alloc_private(self, pe: int, nbytes: int,
                      align: int = _HEAP_ALIGN) -> LocalArray:
        """Allocate a per-cell *private* byte buffer from the top of DRAM.

        Private areas (e.g. write-through page copies) may be allocated
        by any subset of cells without breaking symmetric-heap address
        agreement, because they never touch the upward-growing heap.
        """
        if nbytes <= 0:
            raise ConfigurationError("private allocation must be non-empty")
        addr = self._private_next[pe] - nbytes
        addr -= addr % align
        if addr < self._heap_next[pe]:
            raise ConfigurationError(
                f"cell {pe} out of memory: private area would reach {addr} "
                f"against the heap at {self._heap_next[pe]}")
        self._private_next[pe] = addr
        raw = self.hw_cells[pe].memory.view(addr, nbytes)
        return LocalArray(data=raw, addr=addr)

    # ------------------------------------------------------------------
    # Packet movement
    # ------------------------------------------------------------------

    def mark_dirty(self, pe: int) -> None:
        self._dirty.add(pe)

    def note_progress(self) -> None:
        self.progress += 1

    def wake(self, pe: int) -> None:
        """Tell the batched scheduler that ``pe``'s blocking condition
        may have flipped (no-op outside a batched run)."""
        if self._wake is not None:
            self._wake.add(pe)

    def wake_group(self, members: tuple[int, ...]) -> None:
        if self._wake is not None:
            self._wake.update(members)

    def wake_all(self) -> None:
        if self._wake is not None:
            self._wake.update(range(self.config.num_cells))

    def pump(self) -> None:
        """Move the machine to communication quiescence.

        Drains every dirty MSC+ queue and every in-flight packet; GET
        requests delivered to a cell dirty that cell (its MSC+ must send
        the reply) so the loop runs until nothing moves.

        With a fault plan active the wire may eat frames, so "nothing
        moves" is not enough: whenever the wire goes quiet while framed
        packets remain unacknowledged, the reliable transport is ticked
        (eventually retransmitting) and the wire is drained again.  The
        loop ends only at *reliable* quiescence — every frame delivered
        exactly once and acknowledged — or by raising
        :class:`~repro.core.errors.CommTimeoutError` once a frame's
        retry budget is spent.  Recovery thus completes inside the pump,
        preserving the quiescence-at-issue property the happens-before
        checker relies on.
        """
        if self.obs is not None:
            self.obs.sample_queues()
        transport = self.transport
        while True:
            self._pump_wire()
            if transport is None or transport.idle():
                return
            transport.tick()

    def _pump_wire(self) -> None:
        """One perfect-wire quiescence loop (no retransmission)."""
        wake = self._wake
        while True:
            dirty = self._dirty
            if (not dirty and self.tnet.injected_count
                    == self.tnet.delivered_count):
                return
            self._dirty = set()
            for pe in dirty:
                if pe in self.killed:
                    continue
                msc = self.hw_cells[pe].msc
                msc.pump_send()
                msc.pump_replies()
            if wake is not None:
                # Pumping a cell's MSC+ updates its sending-side flags.
                wake.update(dirty)
            for packet in self.tnet.drain_all():
                if self.transport is not None:
                    arrivals = self.transport.receive(packet)
                elif packet.dst in self.killed:
                    continue
                else:
                    arrivals = [packet]
                for frame in arrivals:
                    msc = self.hw_cells[frame.dst].msc
                    msc.deliver(frame)
                    self.progress += 1
                    if wake is not None:
                        wake.add(frame.dst)
                    if frame.kind in (PacketKind.GET_REQUEST,
                                      PacketKind.REMOTE_LOAD):
                        self._dirty.add(frame.dst)

    # ------------------------------------------------------------------
    # Collectives
    # ------------------------------------------------------------------

    def _alive_members(self, members: tuple[int, ...]) -> tuple[int, ...]:
        """The members a collective must wait for.

        On a perfect machine (or without ``plan.degrade``) that is every
        member — a killed cell then hangs the collective until the
        watchdog converts the hang into a CommTimeoutError.  Under
        degradation the group shrinks around its dead members."""
        if self.fault_plan is not None and self.fault_plan.degrade:
            return tuple(m for m in members if m not in self.killed)
        return members

    def barrier_arrive(self, group: Group, pe: int) -> int:
        state = self._barriers.get(group.gid)
        if state is None:
            state = _BarrierState(group.members)
            self._barriers[group.gid] = state
        if pe in state.arrived:
            raise CommunicationError(
                f"cell {pe} arrived twice at barrier of group {group.gid}")
        if pe not in group:
            raise CommunicationError(
                f"cell {pe} synchronizing with group {group.gid} it does "
                "not belong to")
        state.arrived.add(pe)
        generation = state.generation
        self._maybe_release_barrier(group.gid, state)
        return generation

    def _maybe_release_barrier(self, gid: int, state: _BarrierState) -> None:
        required = self._alive_members(state.members)
        if not required or not all(m in state.arrived for m in required):
            return
        state.arrived.clear()
        state.generation += 1
        self.progress += 1
        self.wake_group(state.members)
        if gid == 0:
            # The all-cells barrier is the hardware S-net's job.
            for member in state.members:
                self.snet.arrive(member)

    def barrier_passed(self, gid: int, generation: int) -> bool:
        state = self._barriers.get(gid)
        return state is not None and state.generation > generation

    def reduce(self, group: Group, pe: int, value: Any, op: str):
        """Generator implementing one member's part of a reduction."""
        if pe not in group:
            raise CommunicationError(
                f"cell {pe} reducing with group {group.gid} it does not "
                "belong to")
        state = self._reductions.get(group.gid)
        if state is None:
            state = _ReductionState(group.members)
            self._reductions[group.gid] = state
        generation = state.per_pe_generation.get(pe, 0)
        state.per_pe_generation[pe] = generation + 1
        slot = state.slots.setdefault(generation, {})
        if pe in slot:
            raise CommunicationError(
                f"cell {pe} contributed twice to reduction {generation} "
                f"of group {group.gid}")
        slot[pe] = value
        state.ops.setdefault(generation, op)
        self._maybe_complete_reduction(group.gid, state, generation)
        while generation not in state.results:
            yield
        self.note_progress()
        result = state.results[generation]
        state.fetches[generation] += 1
        if state.fetches[generation] >= len(
                self._alive_members(state.members)):
            del state.results[generation]
            del state.fetches[generation]
        return result

    def _maybe_complete_reduction(self, gid: int, state: _ReductionState,
                                  generation: int) -> None:
        slot = state.slots.get(generation)
        if slot is None:
            return
        required = self._alive_members(state.members)
        if not required or not all(m in slot for m in required):
            return
        # Combine in member order (alive contributions only, when the
        # group has degraded around killed cells).
        contributions = [slot[m] for m in required]
        op = state.ops.pop(generation)
        state.results[generation] = functools.reduce(
            lambda a, b: _combine_values(op, a, b), contributions)
        state.fetches[generation] = 0
        del state.slots[generation]
        self.progress += 1
        self.wake_group(state.members)

    # ------------------------------------------------------------------
    # Distributed shared memory
    # ------------------------------------------------------------------

    def remote_store(self, src: int, dst: int, remote_addr: int,
                     data: bytes) -> None:
        """Issue a hardware remote store from ``src`` to ``dst``."""
        scratch = self.alloc_scratch(src, data)
        command = Command(
            kind=CommandKind.REMOTE_STORE, dst=dst, raddr=remote_addr,
            laddr=scratch.addr, send_stride=StrideSpec.contiguous(len(data)),
            recv_stride=StrideSpec.contiguous(len(data)))
        self.hw_cells[src].msc.issue(command)
        self.mark_dirty(src)
        self.pump()

    def remote_load(self, src: int, target: int, remote_addr: int,
                    size: int) -> bytes:
        """Blocking remote load: returns the bytes read from ``target``."""
        scratch = self.alloc_scratch(src, bytes(size))
        command = Command(
            kind=CommandKind.REMOTE_LOAD, dst=target, raddr=remote_addr,
            laddr=scratch.addr, send_stride=StrideSpec.contiguous(size),
            recv_stride=StrideSpec.contiguous(size))
        self.hw_cells[src].msc.issue(command)
        self.mark_dirty(src)
        self.pump()
        reply = self.hw_cells[src].msc.take_load_reply()
        if reply is None:
            if target in self.killed:
                # Degradation can discard traffic toward a dead cell, but
                # a load needs a value; there is no graceful answer.
                raise CommTimeoutError(
                    f"remote load from killed cell {target} cannot "
                    "complete")
            raise CommunicationError(
                f"remote load from cell {target} produced no reply")
        assert reply.data is not None
        return reply.data

    _SCRATCH_BYTES = 4096

    def alloc_scratch(self, pe: int, data: bytes) -> LocalArray:
        """A small per-cell staging buffer for shared-memory traffic."""
        if len(data) > self._SCRATCH_BYTES:
            raise CommunicationError(
                f"remote access of {len(data)} bytes exceeds the "
                f"{self._SCRATCH_BYTES}-byte staging buffer; use PUT/GET")
        scratch = getattr(self, "_scratch", None)
        if scratch is None:
            scratch = [self.alloc_array(p, self._SCRATCH_BYTES, np.uint8)
                       for p in range(self.config.num_cells)]
            self._scratch = scratch
        buf = scratch[pe]
        if data:
            buf.data[:len(data)] = np.frombuffer(data, dtype=np.uint8)
        return buf

    # ------------------------------------------------------------------
    # SPMD scheduling
    # ------------------------------------------------------------------

    def run(self, program: Callable, *args, **kwargs) -> list[Any]:
        """Execute ``program(ctx, *args, **kwargs)`` on every cell.

        Returns the per-cell return values.  Raises
        :class:`~repro.core.errors.DeadlockError` when every unfinished
        program is blocked and nothing can make progress — or, when the
        hang is attributable to an active fault plan (killed cells or
        unacknowledged frames), the structured
        :class:`~repro.core.errors.CommTimeoutError` so chaos runs never
        hang silently.  An active plan's kills and stalls fire here,
        keyed on each cell's scheduler-resumption count.

        Two scheduler loops produce the exact same interleaving (and
        therefore byte-identical traces): the reference loop resumes
        every unfinished cell every pass; the batched loop (the default)
        parks a cell when it yields and resumes it only once a state
        change that can flip its blocking condition names it in the
        machine's wake set (frame delivery wakes the destination, an
        MSC+ pump wakes its own cell's sending-side flags, barrier
        release and reduction completion wake the group, a creg store
        wakes the register's owner, host traffic wakes everyone).  A
        skipped resume is provably a no-op: every yield in the cell
        programs sits in a ``while not condition: yield`` loop whose
        condition only flips through one of those wake sites, and the
        failed re-check itself mutates nothing (``ring.receive`` returns
        None without consuming on a miss).
        """
        n = self.config.num_cells
        plan = self.fault_plan
        if plan is None and self.config.scheduler == "sharded":
            from repro.machine import sharded

            # Ineligible runs (restores, armed checkpoint gates, pre-run
            # allocations, no fork support) fall through to the batched
            # loop, which produces the identical trace serially.
            if sharded.eligible(self):
                return sharded.run_sharded(self, program, args, kwargs)
        contexts = [CellContext(self, pe) for pe in range(n)]
        self._active_contexts = contexts
        if self._restore_ctx is not None:
            for pe, saved in self._restore_ctx.items():
                ctx = contexts[pe]
                ctx.acks._puts_per_dest = dict(saved["puts_per_dest"])
                ctx.acks._acks_issued = saved["acks_issued"]
                ctx._wt_fetches = saved["wt_fetches"]
            self._restore_ctx = None
        results: list[Any] = [None] * n
        generators: dict[int, Any] = {}
        for pe in range(n):
            outcome = program(contexts[pe], *args, **kwargs)
            if inspect.isgenerator(outcome):
                generators[pe] = outcome
            else:
                results[pe] = outcome
        if self._restore_killed:
            # Cells that were already dead at capture never run again;
            # their kill side effects were restored with the snapshot.
            for pe in sorted(self._restore_killed):
                gen = generators.pop(pe, None)
                if gen is not None:
                    gen.close()
            self._restore_killed = None
        self._finished_cells = set()
        self._active_generators = generators
        try:
            if plan is None and self.config.scheduler in ("batched",
                                                          "sharded"):
                self._run_batched(generators, results)
            else:
                self._run_reference(generators, results)
        finally:
            self._active_generators = None
            self._active_contexts = None
            self._restore_states = None
        self.pump()
        return results

    def _run_batched(self, generators: dict[int, Any],
                     results: list[Any]) -> None:
        """Wake-set scheduler: resume only cells named by a wake site.

        A "round" mirrors one pass of the reference loop: cells resume
        in ascending-pe order, each at most once per round.  A wake
        caused by cell ``p`` for cell ``w`` joins the *current* round
        when ``w > p`` and ``w`` has not yet run this round (the
        reference pass would still reach it), and the next round
        otherwise -- so the sequence of effective (non-no-op) resumes is
        exactly the reference loop's.  A wake recorded for a cell that
        is already past its wait costs one no-op resume, so stale wakes
        are harmless; a *missed* wake would hang, which is what the
        scheduler-equivalence tests pin down.
        """
        resumes = self._resumes
        wake: set[int] = set()
        self._wake = wake
        try:
            pending = set(generators)   # still to resume this round
            heap = sorted(pending)
            done: set[int] = set()      # resumed this round
            nxt: set[int] = set()       # woken for the next round
            while True:
                while heap:
                    pe = heapq.heappop(heap)
                    if pe not in pending:
                        continue
                    pending.discard(pe)
                    done.add(pe)
                    resumes[pe] += 1
                    try:
                        next(generators[pe])
                    except StopIteration as stop:
                        results[pe] = stop.value
                        del generators[pe]
                        self._finished_cells.add(pe)
                        self.progress += 1
                    if wake:
                        for w in wake:
                            if w > pe and w not in done and w in generators:
                                if w not in pending:
                                    pending.add(w)
                                    heapq.heappush(heap, w)
                            else:
                                nxt.add(w)
                        wake.clear()
                if not generators:
                    return
                pending = {w for w in nxt if w in generators}
                heap = sorted(pending)
                done.clear()
                nxt.clear()
                if not heap:
                    if self._ckpt_gate_ready():
                        # Every cell is parked at the checkpoint gate,
                        # not hung: capture and release.
                        self._capture_checkpoint()
                    elif self._gate_parked:
                        # Some cells parked but the gate can never fill
                        # (a cell finished mid-epoch): give up on
                        # checkpointing and release them.
                        self._abort_checkpoint()
                    else:
                        # Every unfinished cell is parked and nothing
                        # woke anyone: no re-check can ever pass again.
                        # This is the hang the reference loop's watchdog
                        # needs three stalled passes to call.
                        self._raise_hang(generators)
                    pending = set(generators)
                    heap = sorted(pending)
                    wake.clear()
        finally:
            self._wake = None

    def _run_reference(self, generators: dict[int, Any],
                       results: list[Any]) -> None:
        """Resume-everyone-every-pass scheduler (fault plans need it:
        kill/stall schedules count per-cell resumes)."""
        plan = self.fault_plan
        stalled_passes = 0
        watchdog = 3 if plan is None else max(3, plan.watchdog_passes)
        while generators:
            before = self.progress
            saw_stall = False
            for pe in sorted(generators):
                if plan is not None:
                    if self._kill_due(pe):
                        self.kill_cell(pe)
                        continue
                    if self._stall_check(pe):
                        saw_stall = True
                        continue
                self._resumes[pe] += 1
                try:
                    next(generators[pe])
                except StopIteration as stop:
                    results[pe] = stop.value
                    del generators[pe]
                    self._finished_cells.add(pe)
                    self.progress += 1
            if self._ckpt_gate_ready():
                self._capture_checkpoint()
                stalled_passes = 0
                continue
            if self.progress == before and not saw_stall:
                stalled_passes += 1
                if stalled_passes >= watchdog:
                    if self._gate_parked:
                        # Parked cells and a dead epoch: the gate can
                        # never fill (a killed cohort, a finished cell).
                        # Release the parked cells instead of calling it
                        # a hang.
                        self._abort_checkpoint()
                        stalled_passes = 0
                    else:
                        self._raise_hang(generators)
            else:
                stalled_passes = 0

    # ------------------------------------------------------------------
    # Checkpoint gate (repro.ckpt)
    # ------------------------------------------------------------------

    def _ckpt_armed_for(self, pe: int) -> bool:
        """True while ``pe`` must park at its current checkpoint site."""
        if self._ckpt_oneshot:
            return True
        threshold = self._ckpt_threshold
        return threshold is not None and self._ckpt_counts[pe] >= threshold

    def _ckpt_enabled(self) -> bool:
        return self._ckpt_threshold is not None or self._ckpt_oneshot

    def _ckpt_poll_interrupt(self) -> None:
        """Honour a pending SIGTERM/SIGINT checkpoint request.

        Polled only at checkpoint sites, and only when snapshots have
        somewhere to land; arms a one-shot gate so every cell parks at
        its very next site, then the capture stops the run with
        :class:`~repro.core.errors.CheckpointInterrupt`.
        """
        if self.checkpoint_dir is None:
            return
        if _ckpt_policy.interrupt_requested():
            _ckpt_policy.clear_interrupt()
            self._ckpt_oneshot = True
            self._ckpt_stop_after = True

    def _ckpt_gate_ready(self) -> bool:
        """Every live cell is parked at the gate and none finished."""
        generators = self._active_generators
        if not self._gate_parked or not generators or self._finished_cells:
            return False
        return all(pe in self._gate_parked for pe in generators)

    def _capture_checkpoint(self) -> None:
        """All live cells are parked: capture, persist, release.

        The snapshot records the *post*-capture threshold, so a resumed
        run arms the next epoch rather than re-parking at this one.
        """
        from repro.ckpt.snapshot import capture_snapshot, save_snapshot

        self.pump()
        self.ckpt_seq += 1
        if self._ckpt_every is not None:
            self._ckpt_threshold = ((self._ckpt_threshold or 0)
                                    + self._ckpt_every)
        else:
            self._ckpt_threshold = None
        self._ckpt_oneshot = False
        snapshot = capture_snapshot(self)
        self.last_snapshot = snapshot
        path = None
        if self.checkpoint_dir is not None:
            path = save_snapshot(snapshot, self.checkpoint_dir)
        self._gate_parked.clear()
        self.progress += 1
        self.wake_all()
        if self._ckpt_stop_after:
            raise CheckpointInterrupt(
                f"run stopped after capturing checkpoint {self.ckpt_seq} "
                "as requested",
                snapshot_path=str(path) if path is not None else None)

    def _abort_checkpoint(self) -> None:
        """The gate can never fill: disarm it and release parked cells.

        Happens when a cell finished (its return value cannot survive a
        restore) or a killed cohort left the remaining cells unable to
        reach the site count.  The run continues un-checkpointed.
        """
        self._ckpt_threshold = None
        self._ckpt_oneshot = False
        self._gate_parked.clear()
        self.progress += 1
        self.wake_all()

    def _raise_hang(self, generators: dict[int, Any]) -> None:
        """Watchdog expiry: name the hang for what it is."""
        report = self._deadlock_report(generators)
        if self.checkpoint_dir is not None:
            with contextlib.suppress(Exception):
                from repro.ckpt.snapshot import (
                    capture_snapshot,
                    save_snapshot,
                )

                self.ckpt_seq += 1
                dump = capture_snapshot(self, resumable=False)
                path = save_snapshot(dump, self.checkpoint_dir)
                report += ("\n  machine state dumped for inspection "
                           f"(non-resumable) to {path}")
        if self.fault_plan is not None and (
                self.killed
                or (self.transport is not None
                    and not self.transport.idle())):
            raise CommTimeoutError(
                "communication watchdog expired: cells blocked on "
                "communication that can no longer complete\n" + report)
        raise DeadlockError(report)

    def _kill_due(self, pe: int) -> bool:
        plan = self.fault_plan
        return (plan is not None and pe not in self.killed
                and plan.killed_at(pe, self._resumes[pe]))

    def _stall_check(self, pe: int) -> bool:
        """True when the plan freezes ``pe`` for this scheduler pass."""
        remaining = self._stall_remaining.get(pe, 0)
        if remaining > 0:
            self._stall_remaining[pe] = remaining - 1
            return True
        specs = self._stalls.get(pe)
        if specs:
            resumes = self._resumes[pe]
            for spec in list(specs):
                if resumes >= spec.at_resume:
                    specs.remove(spec)
                    # This pass counts as the first frozen one.
                    self._stall_remaining[pe] = spec.passes - 1
                    return True
        return False

    def kill_cell(self, pe: int) -> None:
        """Kill cell ``pe`` mid-program: its generator dies instantly and
        frames toward it fall off the wire.  With ``plan.degrade`` the
        survivors' collectives shrink around the corpse; without it, any
        cell that depends on ``pe`` times out with a structured error."""
        if pe in self.killed:
            return
        generators = self._active_generators
        if generators is not None:
            gen = generators.pop(pe, None)
            if gen is not None:
                gen.close()
        self.killed.add(pe)
        if isinstance(self.tnet, FaultyTNet):
            self.tnet.killed.add(pe)
        self._flag_waits.pop(pe, None)
        self._gate_parked.discard(pe)
        self._finished_cells.discard(pe)
        self._dirty.discard(pe)
        if self.transport is not None:
            self.transport.on_kill(pe)
        if self.fault_plan is not None and self.fault_plan.degrade:
            self._refresh_collectives()
        self.progress += 1

    def _refresh_collectives(self) -> None:
        """Re-check every pending collective after the world shrank."""
        for gid, bstate in self._barriers.items():
            self._maybe_release_barrier(gid, bstate)
        for gid, rstate in self._reductions.items():
            for generation in sorted(rstate.slots):
                self._maybe_complete_reduction(gid, rstate, generation)

    # ------------------------------------------------------------------
    # Robustness bookkeeping
    # ------------------------------------------------------------------

    def record_robustness_event(self, kind: EventKind, *, pe: int,
                                partner: int, count: int = 0) -> None:
        """Record a RETRY/TIMEOUT trace event from the transport."""
        self.trace.record(TraceEvent(kind=kind, pe=pe, partner=partner,
                                     size=int(count)))

    def _record_spill(self, pe: int, queue_name: str, words: int) -> None:
        """A command-queue word streamed past the MSC+ into DRAM."""
        self.trace.record(TraceEvent(kind=EventKind.SPILL, pe=pe,
                                     size=int(words)))

    def _deadlock_report(self, generators: dict[int, Any] | None = None
                         ) -> str:
        if generators is None:
            generators = self._active_generators or {}
        blocked = sorted(generators)
        lines = [
            f"deadlock: {len(blocked)} cell(s) blocked with no progress "
            f"possible: {blocked[:16]}{'...' if len(blocked) > 16 else ''}"
        ]
        for gid, state in self._barriers.items():
            if state.arrived:
                lines.append(
                    f"  barrier group {gid}: {len(state.arrived)} arrived, "
                    f"waiting for more")
        for pe in blocked[:16]:
            wait = self._flag_waits.get(pe)
            if wait is not None:
                flag_id, target, addr = wait
                current = self.hw_cells[pe].mc.read_flag(addr)
                status = f"waiting on flag {flag_id} ({current}/{target})"
            else:
                status = "blocked (barrier, receive, or reduction)"
            lines.append(
                f"  cell {pe}: {status}; T-net in flight: "
                f"{self.tnet.pending_for(pe)} inbound, "
                f"{self.tnet.pending_from(pe)} outbound")
        if self.killed:
            lines.append(f"  killed cells: {sorted(self.killed)}")
        in_flight = self.tnet.injected_count - self.tnet.delivered_count
        lines.append(f"  packets in flight: {in_flight}")
        return "\n".join(lines)


def _combine_values(op: str, left: Any, right: Any) -> Any:
    """Reduction combine supporting scalars and numpy arrays."""
    if isinstance(left, np.ndarray) or isinstance(right, np.ndarray):
        if op == "sum":
            return left + right
        if op == "max":
            return np.maximum(left, right)
        if op == "min":
            return np.minimum(left, right)
        if op == "prod":
            return left * right
        raise ConfigurationError(f"vector reduction op {op!r} not supported")
    return combine(op, left, right)
