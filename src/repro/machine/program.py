"""The per-cell programming interface of the functional machine.

An application is an SPMD *program*: a generator function
``program(ctx, **params)`` executed once per cell, where ``ctx`` is this
module's :class:`CellContext`.  Non-blocking operations (PUT, GET, SEND,
computation charging) are plain method calls whose functional effect —
bytes moving between cell memories, flags incrementing — happens
immediately.  Blocking operations (flag waits, RECEIVE, barriers,
reductions, communication-register loads) are generator methods used with
``yield from``; each ``yield`` returns control to the scheduler until the
condition can be satisfied by another cell's progress.

Every operation is recorded as a :class:`~repro.trace.events.TraceEvent`,
so running a program produces both a *numerical result* (testable against
a sequential reference) and a *trace* (consumed by MLSim for timing).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator
from typing import TYPE_CHECKING

import numpy as np

from repro.core.completion import AckTracker
from repro.core.errors import CommunicationError, ConfigurationError
from repro.core.flags import MAX_FLAGS_PER_PE, Flag
from repro.core.stride import ElementStride
from repro.hardware.mc import NO_FLAG
from repro.hardware.msc import Command, CommandKind
from repro.machine.config import SPARC_US_PER_FLOP
from repro.network.packet import StrideSpec
from repro.trace.events import EventKind, TraceEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.machine import Machine


@dataclass(frozen=True)
class Group:
    """A synchronization group: a subset of cells with a stable rank order."""

    gid: int
    members: tuple[int, ...]

    @property
    def size(self) -> int:
        return len(self.members)

    def rank_of(self, pe: int) -> int:
        try:
            return self.members.index(pe)
        except ValueError:
            raise CommunicationError(
                f"cell {pe} is not a member of group {self.gid}") from None

    def __contains__(self, pe: int) -> bool:
        return pe in self.members


class LocalArray:
    """A numpy array carved out of a cell's simulated DRAM.

    ``data`` is a live view into the cell's memory buffer, so PUT/GET DMA
    (which moves raw bytes through :class:`~repro.hardware.memory.CellMemory`)
    and numpy computation see the same storage.  ``addr`` is the logical
    base address used in communication commands.
    """

    __slots__ = ("data", "addr")

    def __init__(self, data: np.ndarray, addr: int) -> None:
        self.data = data
        self.addr = addr

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def itemsize(self) -> int:
        return self.data.dtype.itemsize

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    def element_addr(self, offset_elements: int) -> int:
        """Logical address of element ``offset_elements`` (flat order)."""
        if not 0 <= offset_elements <= self.size:
            raise ConfigurationError(
                f"element offset {offset_elements} outside array of "
                f"{self.size} elements")
        return self.addr + offset_elements * self.itemsize

    def __getitem__(self, key):
        return self.data[key]

    def __setitem__(self, key, value) -> None:
        self.data[key] = value

    def __len__(self) -> int:
        return len(self.data)


class WriteThroughArray:
    """A remote array bound through write-through pages (section 4.2).

    ``data`` is the local page copy viewed with the array's dtype; reads
    through it are plain local loads (no communication event — that is
    the mechanism's whole point).  :meth:`write` updates the copy *and*
    writes through to the home cell.  Coherence is software-managed: the
    copy only changes when the owner of this handle writes through it or
    calls ``ctx.wt_refresh``.
    """

    __slots__ = ("ctx", "home", "array", "copy", "span_base", "data")

    def __init__(self, ctx: "CellContext", home: int, array: "LocalArray",
                 copy: "LocalArray", span_base: int) -> None:
        self.ctx = ctx
        self.home = home
        self.array = array
        self.copy = copy
        self.span_base = span_base
        offset = array.addr - span_base
        raw = copy.data[offset:offset + array.nbytes]
        self.data = raw.view(array.dtype).reshape(array.shape)

    def read(self, offset: int):
        """Read one element — a remote access replaced by a local one."""
        table = self.ctx._wt_table
        assert table is not None
        table.note_local_read()
        return self.data.reshape(-1)[offset]

    def write(self, offset: int, value) -> None:
        """Write one element through to the home cell."""
        table = self.ctx._wt_table
        assert table is not None
        self.data.reshape(-1)[offset] = value
        self.ctx.remote_store_word(self.home, self.array, offset, value)
        table.note_write_through()


class CkptState:
    """A cell program's checkpointable loop state (a picklable bag).

    Cell programs are generators, and generator frames cannot be
    serialized — so a checkpointable program keeps everything that must
    survive a restart in one of these instead of in locals.  Obtained
    from :meth:`CellContext.ckpt_state`: on a fresh run the bag carries
    the caller's defaults and ``fresh`` is True; on a restored run it
    carries the captured values and ``fresh`` is False, so the program
    can skip its prologue's *traced* work (allocations still happen —
    they must, to rebuild the address map — but initialization traffic
    and initial barriers are guarded by ``if st.fresh:``).
    """

    def __init__(self, fresh: bool, fields: dict) -> None:
        self.fresh = fresh
        self.__dict__.update(fields)

    def capture(self) -> dict:
        """The picklable field dict (``fresh`` excluded)."""
        state = dict(self.__dict__)
        state.pop("fresh", None)
        return state


class CellContext:
    """The programming interface one cell's program sees."""

    def __init__(self, machine: "Machine", pe: int) -> None:
        self.machine = machine
        self.pe = pe
        self.hw = machine.hw_cells[pe]
        self.ring = machine.rings[pe]
        self._next_flag = 0
        # Every cell allocates its acknowledge flag first (slot 0), the
        # implicit flag the Ack & Barrier model counts GET replies on.
        self.ack_flag = self.alloc_flag()
        self.acks = AckTracker(self.ack_flag, policy=machine.ack_policy)
        # Write-through page state.  The fetch flag is allocated eagerly
        # (slot 1 on every cell) so that cells which never bind pages stay
        # in symmetric-allocation lockstep with cells that do.
        self._wt_flag: Flag = self.alloc_flag()
        self._wt_table = None
        self._wt_fetches = 0
        #: Checkpointable loop state registered via :meth:`ckpt_state`;
        #: None marks the program as not checkpointable.
        self._ckpt_st: CkptState | None = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_cells(self) -> int:
        return self.machine.config.num_cells

    @property
    def world(self) -> Group:
        return self.machine.world_group

    def _trace(self, kind: EventKind, **fields) -> TraceEvent:
        return self.machine.trace.record(
            TraceEvent(kind, pe=self.pe, **fields))

    # ------------------------------------------------------------------
    # Memory and flags
    # ------------------------------------------------------------------

    def alloc(self, shape, dtype=np.float64) -> LocalArray:
        """Allocate an array in this cell's DRAM.

        SPMD programs that allocate in the same order on every cell get
        *symmetric* arrays: the same logical address everywhere, which is
        what PUT/GET commands target on remote cells.
        """
        return self.machine.alloc_array(self.pe, shape, dtype)

    def alloc_flag(self) -> Flag:
        """Allocate the next symmetric flag slot.

        Flags start at zero because cell memory is zeroed at machine
        construction.  Allocation deliberately does *not* write the flag:
        a peer that runs ahead may already have PUT to this cell and
        incremented the flag before this cell reaches its own allocation
        point — exactly as on real SPMD hardware, where flags live in
        zero-initialized storage and are never "initialized" at use time.
        """
        if self._next_flag >= MAX_FLAGS_PER_PE:
            raise ConfigurationError("flag area exhausted")
        flag = Flag(index=self._next_flag, owner=self.pe)
        self._next_flag += 1
        return flag

    def flag_read(self, flag: Flag) -> int:
        return self.hw.mc.read_flag(flag.addr)

    def flag_clear(self, flag: Flag) -> None:
        self.hw.mc.write_flag(flag.addr, 0)

    # ------------------------------------------------------------------
    # Computation charging
    # ------------------------------------------------------------------

    def compute(self, work_us: float) -> None:
        """Charge ``work_us`` microseconds of base-SPARC computation."""
        if work_us < 0:
            raise ConfigurationError("work must be non-negative")
        if work_us:
            self._trace(EventKind.COMPUTE, work=float(work_us))

    def compute_flops(self, flops: float) -> None:
        """Charge computation by floating-point operation count."""
        self.compute(flops * SPARC_US_PER_FLOP)

    def rtsys(self, work_us: float) -> None:
        """Charge run-time system work (address calculation and the like)."""
        if work_us < 0:
            raise ConfigurationError("work must be non-negative")
        if work_us:
            self._trace(EventKind.RTSYS, work=float(work_us))

    def phase(self, label: str) -> None:
        """Label the start of a program phase (e.g. one solver iteration).

        Costs zero simulated time; the label shows up in timeline exports
        (:mod:`repro.obs`) so traces viewed in Perfetto can be navigated
        by application structure.
        """
        self._trace(EventKind.PHASE,
                    flag=self.machine.trace.phase_id(str(label)))

    # ------------------------------------------------------------------
    # PUT / GET (the paper's interface, array-level)
    # ------------------------------------------------------------------

    def _flag_addr(self, flag: Flag | None) -> int:
        return flag.addr if flag is not None else NO_FLAG

    def _annotate(self, ev: TraceEvent, command: Command) -> None:
        """Stamp the command's byte footprints onto a traced event.

        Active only under the sanitizer (``repro check`` / opt-in config):
        the remote side is the scatter of a PUT or the gather of a GET,
        the local side the other half.  Zero-byte transfers (the
        acknowledge idiom) carry no footprint.
        """
        if not self.machine.sanitize:
            return
        if command.kind is CommandKind.PUT:
            rspec, lspec = command.recv_stride, command.send_stride
        else:
            rspec, lspec = command.send_stride, command.recv_stride
        if rspec.total_bytes:
            ev.raddr = command.raddr
            ev.rchunk = rspec.item_size
            ev.rcount = rspec.count
            ev.rstep = rspec.skip
        if lspec.total_bytes:
            ev.laddr = command.laddr
            ev.lchunk = lspec.item_size
            ev.lcount = lspec.count
            ev.lstep = lspec.skip

    def _issue(self, command: Command) -> None:
        self.hw.msc.issue(command)
        self.machine.mark_dirty(self.pe)
        self.machine.pump()

    def put(self, dst: int, dest: LocalArray, src: LocalArray, *,
            count: int | None = None, dest_offset: int = 0,
            src_offset: int = 0, send_flag: Flag | None = None,
            recv_flag: Flag | None = None, ack: bool = False) -> None:
        """PUT ``count`` elements of ``src`` into ``dest`` on cell ``dst``.

        ``dest`` is this cell's handle of a *symmetric* array — the write
        lands at the same logical address in the destination cell.  The
        send flag is incremented here when the send DMA completes; the
        receive flag is incremented on ``dst`` when its receive DMA
        completes (combined flag update, section 4.1).  With ``ack=True``
        the acknowledge policy decides whether a GET-to-address-0 follows
        immediately.
        """
        if count is None:
            count = src.size - src_offset
        nbytes = count * src.itemsize
        self._check_transfer(dest, src, dest_offset, src_offset, count)
        command = Command(
            kind=CommandKind.PUT, dst=dst,
            raddr=dest.element_addr(dest_offset),
            laddr=src.element_addr(src_offset),
            send_stride=StrideSpec.contiguous(nbytes),
            recv_stride=StrideSpec.contiguous(nbytes),
            send_flag=self._flag_addr(send_flag),
            recv_flag=self._flag_addr(recv_flag),
        )
        ev = self._trace(
            EventKind.PUT, partner=dst, size=nbytes,
            send_flag=send_flag.id_on(self.pe) if send_flag else 0,
            recv_flag=recv_flag.id_on(dst) if recv_flag else 0,
        )
        self._annotate(ev, command)
        self._issue(command)
        if ack and self.acks.record_put(dst):
            self.ack_get(dst)

    def put_stride(self, dst: int, dest: LocalArray, src: LocalArray,
                   send_stride: ElementStride, recv_stride: ElementStride, *,
                   dest_offset: int = 0, src_offset: int = 0,
                   send_flag: Flag | None = None,
                   recv_flag: Flag | None = None, ack: bool = False) -> None:
        """PUT with one-dimensional stride gather/scatter (Figure 3).

        Strides are given in *elements*; the hardware sees bytes.  The
        total element counts on both sides must agree.
        """
        if send_stride.total_elements != recv_stride.total_elements:
            raise CommunicationError(
                f"stride element counts disagree: send moves "
                f"{send_stride.total_elements}, recv expects "
                f"{recv_stride.total_elements}")
        nbytes = send_stride.total_elements * src.itemsize
        command = Command(
            kind=CommandKind.PUT, dst=dst,
            raddr=dest.element_addr(dest_offset),
            laddr=src.element_addr(src_offset),
            send_stride=send_stride.to_bytes(src.itemsize),
            recv_stride=recv_stride.to_bytes(dest.itemsize),
            send_flag=self._flag_addr(send_flag),
            recv_flag=self._flag_addr(recv_flag),
        )
        ev = self._trace(
            EventKind.PUT, partner=dst, size=nbytes, stride=True,
            send_flag=send_flag.id_on(self.pe) if send_flag else 0,
            recv_flag=recv_flag.id_on(dst) if recv_flag else 0,
        )
        self._annotate(ev, command)
        self._issue(command)
        if ack and self.acks.record_put(dst):
            self.ack_get(dst)

    def get(self, src_pe: int, remote: LocalArray, local: LocalArray, *,
            count: int | None = None, remote_offset: int = 0,
            local_offset: int = 0, send_flag: Flag | None = None,
            recv_flag: Flag | None = None) -> None:
        """GET ``count`` elements from ``remote`` on ``src_pe`` into
        ``local``.

        Both flags live on the requesting cell: the send flag counts the
        request leaving, the receive flag counts the reply data landing.
        """
        if count is None:
            count = local.size - local_offset
        nbytes = count * local.itemsize
        self._check_transfer(local, remote, local_offset, remote_offset, count)
        command = Command(
            kind=CommandKind.GET, dst=src_pe,
            raddr=remote.element_addr(remote_offset),
            laddr=local.element_addr(local_offset),
            send_stride=StrideSpec.contiguous(nbytes),   # remote gather
            recv_stride=StrideSpec.contiguous(nbytes),   # local scatter
            send_flag=self._flag_addr(send_flag),
            recv_flag=self._flag_addr(recv_flag),
        )
        ev = self._trace(
            EventKind.GET, partner=src_pe, size=nbytes,
            send_flag=send_flag.id_on(self.pe) if send_flag else 0,
            recv_flag=recv_flag.id_on(self.pe) if recv_flag else 0,
        )
        self._annotate(ev, command)
        self._issue(command)

    def get_stride(self, src_pe: int, remote: LocalArray, local: LocalArray,
                   remote_stride: ElementStride,
                   local_stride: ElementStride, *,
                   remote_offset: int = 0, local_offset: int = 0,
                   send_flag: Flag | None = None,
                   recv_flag: Flag | None = None) -> None:
        """GET with stride gather on the remote side and stride scatter
        locally."""
        if remote_stride.total_elements != local_stride.total_elements:
            raise CommunicationError(
                f"stride element counts disagree: remote provides "
                f"{remote_stride.total_elements}, local expects "
                f"{local_stride.total_elements}")
        nbytes = remote_stride.total_elements * local.itemsize
        command = Command(
            kind=CommandKind.GET, dst=src_pe,
            raddr=remote.element_addr(remote_offset),
            laddr=local.element_addr(local_offset),
            send_stride=remote_stride.to_bytes(remote.itemsize),
            recv_stride=local_stride.to_bytes(local.itemsize),
            send_flag=self._flag_addr(send_flag),
            recv_flag=self._flag_addr(recv_flag),
        )
        ev = self._trace(
            EventKind.GET, partner=src_pe, size=nbytes, stride=True,
            send_flag=send_flag.id_on(self.pe) if send_flag else 0,
            recv_flag=recv_flag.id_on(self.pe) if recv_flag else 0,
        )
        self._annotate(ev, command)
        self._issue(command)

    def _check_transfer(self, dest: LocalArray, src: LocalArray,
                        dest_offset: int, src_offset: int, count: int) -> None:
        if count < 0:
            raise CommunicationError("negative transfer count")
        if dest.itemsize != src.itemsize:
            raise CommunicationError(
                f"transfer between arrays of different item sizes "
                f"({src.itemsize} vs {dest.itemsize})")
        if src_offset + count > src.size or dest_offset + count > dest.size:
            raise CommunicationError("transfer exceeds array bounds")

    # ------------------------------------------------------------------
    # Acknowledge idiom and completion
    # ------------------------------------------------------------------

    def ack_get(self, dst: int) -> None:
        """Issue the acknowledging GET to remote address 0 (section 4.1).

        The reply copies nothing; it only increments this cell's
        acknowledge flag, and — because the T-net delivers in order per
        (source, destination) pair — proves every earlier PUT to ``dst``
        has been received.
        """
        command = Command(
            kind=CommandKind.GET, dst=dst, raddr=0, laddr=0,
            send_stride=StrideSpec.contiguous(0),
            recv_stride=StrideSpec.contiguous(0),
            recv_flag=self.ack_flag.addr,
        )
        self._trace(
            EventKind.GET, partner=dst, size=0, is_ack=True,
            recv_flag=self.ack_flag.id_on(self.pe),
        )
        self._issue(command)

    def finish_puts(self) -> Iterator[None]:
        """Complete the Ack side of the Ack & Barrier model.

        Issues any deferred per-destination acknowledging GETs (under the
        LAST_PER_DEST policy) and waits until every expected acknowledge
        has arrived.  Callers typically follow with :meth:`barrier`.
        """
        for dst in self.acks.destinations_to_ack():
            self.ack_get(dst)
        yield from self.flag_wait(self.ack_flag, self.acks.expected_acks)
        self.acks.reset_phase()

    def flag_wait(self, flag: Flag, target: int) -> Iterator[None]:
        """Block until ``flag``'s counter on this cell reaches ``target``."""
        self._trace(EventKind.FLAG_WAIT, flag=flag.id_on(self.pe),
                    target=int(target))
        # Register the wait so a hang report can say which flag this
        # cell is stuck on, and how far the count got.
        waits = self.machine._flag_waits
        waits[self.pe] = (flag.id_on(self.pe), int(target), flag.addr)
        while self.hw.mc.read_flag(flag.addr) < target:
            yield
        waits.pop(self.pe, None)
        self.machine.note_progress()

    # ------------------------------------------------------------------
    # SEND / RECEIVE (two-sided model, section 4.3)
    # ------------------------------------------------------------------

    def send(self, dst: int, data: np.ndarray | bytes, *,
             context: int = 0) -> None:
        """Blocking SEND into the destination cell's ring buffer."""
        payload = (data.tobytes() if isinstance(data, np.ndarray)
                   else bytes(data))
        packet = self.hw.msc.send_message(dst, payload, context=context)
        self._trace(EventKind.SEND, partner=dst, size=len(payload),
                    msg_id=packet.serial)
        self.machine.pump()

    def recv(self, src: int | None = None, context: int | None = None,
             in_place: bool = False) -> Iterator[None]:
        """RECEIVE: block until a matching message is in the ring buffer.

        Returns the :class:`~repro.network.packet.Packet`; with
        ``in_place`` the message is consumed directly out of the ring
        (no user-area copy — the vector-reduction path of section 4.5).
        """
        while True:
            taker = (self.ring.consume_in_place if in_place
                     else self.ring.receive)
            packet = taker(src=src, context=context)
            if packet is not None:
                break
            yield
        self.machine.note_progress()
        self._trace(EventKind.RECV, partner=packet.src,
                    size=packet.payload_bytes, msg_id=packet.serial)
        return packet

    def recv_array(self, dtype, src: int | None = None,
                   context: int | None = None) -> Iterator[None]:
        """RECEIVE and decode the payload as a numpy array."""
        packet = yield from self.recv(src=src, context=context)
        return np.frombuffer(packet.data or b"", dtype=dtype).copy()

    # ------------------------------------------------------------------
    # Barrier and global reductions
    # ------------------------------------------------------------------

    def make_group(self, members) -> Group:
        """Register (or look up) a synchronization group."""
        key = tuple(sorted(set(int(m) for m in members)))
        gid = self.machine.trace.groups.intern(key)
        return Group(gid=gid, members=key)

    def barrier(self, group: Group | None = None) -> Iterator[None]:
        """Barrier-synchronize with the group (default: all cells).

        The all-cells barrier rides the S-net in hardware; group barriers
        run in software over communication registers — MLSim charges them
        differently, the functional semantics are the same.
        """
        grp = group or self.world
        self._trace(EventKind.BARRIER, group=grp.gid, group_size=grp.size)
        generation = self.machine.barrier_arrive(grp, self.pe)
        while not self.machine.barrier_passed(grp.gid, generation):
            yield
        self.machine.note_progress()

    def gop(self, value: float, op: str = "sum",
            group: Group | None = None) -> Iterator[None]:
        """Scalar global reduction; every member receives the result."""
        grp = group or self.world
        self._trace(EventKind.GOP, group=grp.gid, group_size=grp.size, size=8)
        result = yield from self.machine.reduce(grp, self.pe, float(value), op)
        return result

    def vgop(self, vector: np.ndarray, op: str = "sum",
             group: Group | None = None) -> Iterator[None]:
        """Vector global reduction (element-wise); returns a new array.

        On the AP1000+ this runs over ring buffers with SEND/RECEIVE
        (section 4.5); the probe records it as one "V Gop" event with the
        vector size, as the paper's Table 3 does.
        """
        grp = group or self.world
        self._trace(EventKind.VGOP, group=grp.gid, group_size=grp.size,
                    size=int(vector.nbytes))
        result = yield from self.machine.reduce(
            grp, self.pe, np.array(vector, copy=True), op)
        return np.array(result, copy=True)

    # ------------------------------------------------------------------
    # Distributed shared memory and communication registers
    # ------------------------------------------------------------------

    def remote_store_word(self, dst: int, array: LocalArray,
                          offset: int, value: float) -> None:
        """Non-blocking remote STORE of one element into ``dst``'s instance
        of a symmetric array (hardware-generated, section 4.2)."""
        scratch = np.array([value], dtype=array.dtype)
        ev = self._trace(EventKind.REMOTE_STORE, partner=dst,
                         size=scratch.nbytes)
        if self.machine.sanitize:
            ev.raddr = array.element_addr(offset)
            ev.rchunk = scratch.nbytes
            ev.rcount = 1
            ev.rstep = max(scratch.nbytes, 1)
        self.machine.remote_store(self.pe, dst,
                                  array.element_addr(offset),
                                  scratch.tobytes())

    def remote_load_word(self, src_pe: int, array: LocalArray,
                         offset: int) -> float:
        """Blocking remote LOAD of one element from ``src_pe``."""
        itemsize = array.itemsize
        ev = self._trace(EventKind.REMOTE_LOAD, partner=src_pe, size=itemsize)
        if self.machine.sanitize:
            ev.raddr = array.element_addr(offset)
            ev.rchunk = itemsize
            ev.rcount = 1
            ev.rstep = max(itemsize, 1)
        raw = self.machine.remote_load(self.pe, src_pe,
                                       array.element_addr(offset), itemsize)
        return np.frombuffer(raw, dtype=array.dtype)[0]

    def creg_store(self, dst: int, index: int, value: int) -> None:
        """Store into a communication register on ``dst`` (remote store to
        shared space; sets the register's p-bit)."""
        self._trace(EventKind.CREG_STORE, partner=dst, size=4)
        self.machine.hw_cells[dst].mc.registers.store(index, value)
        self.machine.note_progress()
        self.machine.wake(dst)

    def creg_load(self, index: int) -> Iterator[None]:
        """Load from an own communication register, blocking until its
        p-bit is set (hardware retry, section 4.4)."""
        self._trace(EventKind.CREG_LOAD, partner=self.pe, size=4)
        while True:
            value = self.hw.mc.registers.try_load(index)
            if value is not None:
                break
            yield
        self.machine.note_progress()
        return value

    # ------------------------------------------------------------------
    # Write-through pages (section 4.2)
    # ------------------------------------------------------------------

    def wt_bind(self, home: int, array: LocalArray) -> Iterator[None]:
        """Bind ``home``'s instance of a symmetric array into local
        write-through pages and fetch the initial copy.

        Returns a :class:`WriteThroughArray`: reads are local (no
        communication event at all — the replaced remote access), writes
        go through to the home cell, and :meth:`wt_refresh` revalidates
        the copy after a synchronization point.
        """
        from repro.hardware.wtpage import WT_PAGE_BYTES, WriteThroughPageTable

        if self._wt_table is None:
            self._wt_table = WriteThroughPageTable()
        table = self._wt_table
        span_base = array.addr - array.addr % WT_PAGE_BYTES
        span_end = -(-(array.addr + array.nbytes) // WT_PAGE_BYTES) \
            * WT_PAGE_BYTES
        span = span_end - span_base
        copy = self.machine.alloc_private(self.pe, span, align=WT_PAGE_BYTES)
        for off in range(0, span, WT_PAGE_BYTES):
            table.bind(home, span_base + off, copy.addr + off)
        handle = WriteThroughArray(ctx=self, home=home, array=array,
                                   copy=copy, span_base=span_base)
        yield from self.wt_refresh(handle, initial=True)
        return handle

    def wt_refresh(self, handle: "WriteThroughArray", *,
                   initial: bool = False) -> Iterator[None]:
        """Re-fetch the bound pages from the home cell (software
        coherence: call after a barrier when the home data may have
        changed)."""
        assert self._wt_table is not None and self._wt_flag is not None
        span = handle.copy.nbytes
        command = Command(
            kind=CommandKind.GET, dst=handle.home,
            raddr=handle.span_base, laddr=handle.copy.addr,
            send_stride=StrideSpec.contiguous(span),
            recv_stride=StrideSpec.contiguous(span),
            recv_flag=self._wt_flag.addr)
        ev = self._trace(EventKind.GET, partner=handle.home, size=span,
                         recv_flag=self._wt_flag.id_on(self.pe))
        self._annotate(ev, command)
        self._issue(command)
        self._wt_fetches += 1
        yield from self.flag_wait(self._wt_flag, self._wt_fetches)
        if not initial:
            self._wt_table.note_refresh()

    # ------------------------------------------------------------------
    # Checkpoint sites (repro.ckpt)
    # ------------------------------------------------------------------

    def ckpt_state(self, **defaults) -> CkptState:
        """Declare this program's checkpointable loop state.

        Call once, before the main loop, naming every variable that must
        survive a restart with its fresh-run initial value.  On a fresh
        run the returned bag holds exactly those defaults and ``fresh``
        is True; on a run restored from a snapshot it holds the captured
        values (plus defaults for any field added since the capture) and
        ``fresh`` is False.
        """
        saved = None
        restore = self.machine._restore_states
        if restore is not None:
            saved = restore.get(self.pe)
        fields = dict(defaults)
        if saved is not None:
            fields.update(saved)
        st = CkptState(fresh=saved is None, fields=fields)
        self._ckpt_st = st
        return st

    def checkpoint(self, *, barrier: bool = False,
                   group: Group | None = None) -> Iterator[None]:
        """A cooperative checkpoint site (the gate of :mod:`repro.ckpt`).

        Place at the *end* of each main-loop iteration, after the bag
        from :meth:`ckpt_state` has been advanced past the work just
        done — a snapshot captured here then resumes at the next
        iteration without repeating (or losing) any traced work.  With
        ``barrier=True`` the site subsumes the loop's trailing barrier,
        so cell programs pay nothing extra for being checkpointable.

        While the machine's gate is disarmed (no ``checkpoint_every``,
        no ambient policy) the site costs one counter test and is
        trace-invisible; armed, each cell parks at its threshold-th site
        until every live cell has arrived and the machine captures.
        """
        if barrier:
            yield from self.barrier(group)
        m = self.machine
        m._ckpt_poll_interrupt()
        if not m._ckpt_enabled():
            return
        m._ckpt_counts[self.pe] += 1
        if not m._ckpt_armed_for(self.pe):
            return
        m._gate_parked.add(self.pe)
        try:
            while m._ckpt_armed_for(self.pe):
                yield
        finally:
            m._gate_parked.discard(self.pe)
        m.note_progress()
