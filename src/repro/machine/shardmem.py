"""Shared-memory backing for the sharded engine (:mod:`sharded`).

Two pieces live here, both thin wrappers over POSIX shared memory:

* :class:`SegmentPool` — owns every ``multiprocessing.shared_memory``
  segment a sharded run creates (cell DRAM blocks and the mailbox
  segment) and guarantees they are unlinked exactly once, on every exit
  path: the normal ``release()`` at end of run, the context-manager
  ``__exit__`` on exceptions, an ``atexit`` backstop, and a chained
  SIGTERM handler installed for the duration of the run.  Orphaned
  ``/dev/shm`` files are the classic failure mode of shared-memory
  programs; the pool makes "kill the run at any point" leak-free.

* :class:`ShmRing` — a single-producer single-consumer byte ring laid
  out in a shared segment, the cross-shard mailbox.  It is the
  process-level twin of the AP1000+ ring buffer MSC+ SENDs land in
  (:mod:`repro.machine.ringbuffer`): the producer deposits length-
  prefixed records and publishes a monotonic tail counter; the consumer
  drains up to the published tail and republishes its head.  Under
  CPython (one bytecode at a time per process) on a total-store-order
  machine the data write happens-before the tail publish, which is the
  only ordering the protocol needs; there are no locks, and a full ring
  is handled by the *caller* draining its own inbound rings while
  retrying (deadlock-free back-pressure, see docs/sharding.md).
"""

from __future__ import annotations

import atexit
import os
import signal
import struct
from multiprocessing import shared_memory

#: Default mailbox ring capacity per ordered shard pair.
DEFAULT_RING_BYTES = 1 << 20

#: Ring header: two u64 monotonic byte counters (head, tail).
_HEADER = struct.Struct("<QQ")
_LENGTH = struct.Struct("<I")

#: Live segments of this process, by name.  Module-global (not
#: per-pool) so the atexit/SIGTERM backstops can sweep everything even
#: if several pools exist.
_LIVE: dict[str, shared_memory.SharedMemory] = {}
#: PID that created the segments; forked children inherit the module
#: state but must never unlink their parent's segments.
_OWNER_PID: int | None = None
_ATEXIT_INSTALLED = False


def _sweep() -> None:
    """Unlink every live segment (idempotent, owner process only)."""
    if _OWNER_PID is not None and os.getpid() != _OWNER_PID:
        return
    for name in list(_LIVE):
        seg = _LIVE.pop(name)
        try:
            seg.unlink()
        except FileNotFoundError:  # already unlinked
            pass


def live_segment_names() -> list[str]:
    """Names of segments not yet unlinked (for leak tests)."""
    return sorted(_LIVE)


class _Segment(shared_memory.SharedMemory):
    """A shared-memory segment tolerant of outliving its unlink.

    The parent keeps numpy views into cell segments after a run (memory
    digests, result arrays), so when the segment object is collected its
    buffer still has exported pointers and the stock ``close()`` raises
    ``BufferError``.  Degrade gracefully: drop the file descriptor and
    let the mapping die with the last view.
    """

    def __del__(self) -> None:
        try:
            self.close()
        except BufferError:
            fd = getattr(self, "_fd", -1)
            if fd >= 0:
                try:
                    os.close(fd)
                except OSError:
                    pass
                self._fd = -1


class SegmentPool:
    """Context-managed registry of shared-memory segments.

    ``create()`` allocates a zero-filled segment and registers it for
    cleanup.  ``release()`` unlinks every segment but keeps the local
    mappings alive (the parent keeps reading results and memory digests
    out of numpy views over the segments after the workers exit; an
    unlinked mapping stays valid until the views are garbage) —
    ``close_mappings=True`` additionally invalidates them.
    """

    def __init__(self) -> None:
        self._segments: list[shared_memory.SharedMemory] = []
        self._prev_sigterm: object = None
        self._hooked = False

    # -- lifecycle -----------------------------------------------------

    def __enter__(self) -> "SegmentPool":
        global _OWNER_PID, _ATEXIT_INSTALLED
        _OWNER_PID = os.getpid()
        if not _ATEXIT_INSTALLED:
            atexit.register(_sweep)
            _ATEXIT_INSTALLED = True
        self._install_sigterm()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def create(self, size: int) -> shared_memory.SharedMemory:
        seg = _Segment(create=True, size=size)
        self._segments.append(seg)
        _LIVE[seg.name] = seg
        return seg

    def release(self, *, close_mappings: bool = False) -> None:
        """Unlink all segments and restore the SIGTERM handler."""
        self._restore_sigterm()
        for seg in self._segments:
            _LIVE.pop(seg.name, None)
            if close_mappings:
                try:
                    seg.close()
                except BufferError:  # live numpy views; leave mapped
                    pass
            try:
                seg.unlink()
            except FileNotFoundError:
                pass
        self._segments = []

    # -- SIGTERM chaining ----------------------------------------------

    def _install_sigterm(self) -> None:
        """Unlink segments on SIGTERM, then hand off to the previous
        handler (or the default action) so the process still dies."""
        try:
            self._prev_sigterm = signal.getsignal(signal.SIGTERM)
            signal.signal(signal.SIGTERM, self._on_sigterm)
            self._hooked = True
        except ValueError:  # not the main thread; atexit still covers
            self._hooked = False

    def _restore_sigterm(self) -> None:
        if self._hooked:
            try:
                signal.signal(signal.SIGTERM, self._prev_sigterm)
            except (ValueError, TypeError):
                pass
            self._hooked = False

    def _on_sigterm(self, signum: int, frame: object) -> None:
        _sweep()
        prev = self._prev_sigterm
        if callable(prev):
            prev(signum, frame)
            return
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        os.kill(os.getpid(), signal.SIGTERM)


class ShmRing:
    """SPSC length-prefixed byte ring over a shared-memory window.

    ``buf`` is a writable memoryview of ``16 + capacity`` bytes: the
    head/tail counters followed by the circular data area.  Head and
    tail are *monotonic* byte counts (never wrapped), so "full" is
    simply ``tail - head == capacity`` and no sentinel byte is needed.
    """

    def __init__(self, buf: memoryview, capacity: int) -> None:
        if len(buf) < _HEADER.size + capacity:
            raise ValueError("ring window smaller than header + capacity")
        self._buf = buf
        self._data = buf[_HEADER.size:_HEADER.size + capacity]
        self.capacity = capacity

    # -- counters ------------------------------------------------------

    @property
    def _head(self) -> int:
        return _HEADER.unpack_from(self._buf, 0)[0]

    @_head.setter
    def _head(self, value: int) -> None:
        struct.pack_into("<Q", self._buf, 0, value)

    @property
    def _tail(self) -> int:
        return _HEADER.unpack_from(self._buf, 0)[1]

    @_tail.setter
    def _tail(self, value: int) -> None:
        struct.pack_into("<Q", self._buf, 8, value)

    def __len__(self) -> int:
        return self._tail - self._head

    # -- circular byte copies ------------------------------------------

    def _write_at(self, pos: int, data: bytes) -> None:
        off = pos % self.capacity
        first = min(len(data), self.capacity - off)
        self._data[off:off + first] = data[:first]
        if first < len(data):
            self._data[:len(data) - first] = data[first:]

    def _read_at(self, pos: int, size: int) -> bytes:
        off = pos % self.capacity
        first = min(size, self.capacity - off)
        out = bytes(self._data[off:off + first])
        if first < size:
            out += bytes(self._data[:size - first])
        return out

    # -- producer / consumer -------------------------------------------

    def try_push(self, record: bytes) -> bool:
        """Deposit one record; False when the ring lacks space.

        The record bytes are fully written *before* the tail counter is
        published, so a consumer that observes the new tail always sees
        a complete record.
        """
        need = _LENGTH.size + len(record)
        if need > self.capacity:
            raise ValueError(
                f"record of {len(record)} bytes exceeds ring capacity "
                f"{self.capacity}")
        tail = self._tail
        if tail - self._head + need > self.capacity:
            return False
        self._write_at(tail, _LENGTH.pack(len(record)))
        self._write_at(tail + _LENGTH.size, record)
        self._tail = tail + need
        return True

    def pop(self) -> bytes | None:
        """Consume the oldest record, or None when the ring is empty."""
        head = self._head
        if self._tail == head:
            return None
        (size,) = _LENGTH.unpack(self._read_at(head, _LENGTH.size))
        record = self._read_at(head + _LENGTH.size, size)
        self._head = head + _LENGTH.size + size
        return record
