"""Sharded multiprocess execution: cells partitioned over workers.

The functional machine is itself a PGAS system here: every cell's DRAM
lives in a ``multiprocessing.shared_memory`` segment owned by its shard,
so an intra-shard PUT/GET is today's fast path and a cross-shard PUT/GET
is a bounds-checked memcpy into the destination segment plus an address
translation — mirroring the AP1000+'s MC-assisted remote DMA.  Control
traffic that must be applied by the *owning* worker (flag increments,
ring-buffer deposits, barrier arrivals, reduction contributions, comm-
register stores, receive-side counters) flows through per-pair
shared-memory mailboxes (:class:`~repro.machine.shardmem.ShmRing`).

Byte-identity with the serial batched engine is the contract.  Workers
execute the real hardware model (bytes move, flags count) but do **not**
decide the canonical trace order; instead each cell logs an *oplog* —
its trace events plus the scheduling-relevant effects of every
operation — and after all workers finish, the parent **replays** the
oplogs through an exact mirror of the serial batched scheduler
(:meth:`repro.machine.machine.Machine._run_batched`).  The replay
assigns global event sequence numbers, canonical message serials, group
ids and phase ids, so traces, ``AppStatistics`` and memory digests are
byte-identical to a serial run at every shard count.  See
``docs/sharding.md`` for the protocol walk-through.

Limitations (all raise or fall back cleanly): fault plans and armed
checkpoint gates use the reference/batched loops; ``recv`` needs an
explicit ``src=`` (wildcard receives are timing-dependent across
shards); the platform must support the ``fork`` start method.
"""

from __future__ import annotations

import functools
import heapq
import inspect
import os
import pickle
import time
import traceback
from collections import deque
from collections.abc import Callable
from dataclasses import asdict
from typing import Any

import multiprocessing as mp
import numpy as np

from repro.core.errors import (
    CommunicationError,
    ConfigurationError,
    DeadlockError,
)
from repro.core.flags import flag_area_end
from repro.hardware.mc import NO_FLAG
from repro.hardware.msc import Command, CommandKind, MSCStats
from repro.machine.machine import Machine, _combine_values
from repro.machine.program import CellContext, Group
from repro.machine.shardmem import DEFAULT_RING_BYTES, SegmentPool, ShmRing
from repro.network.packet import Packet, PacketKind, StrideSpec
from repro.trace.events import EventKind, TraceEvent

#: Ring window = 16-byte header + data area.
_RING_HEADER = 16

# ----------------------------------------------------------------------
# Partitioners (pluggable cell -> shard assignment)
# ----------------------------------------------------------------------


def _partition_contiguous(num_cells: int, shards: int) -> list[list[int]]:
    """Balanced contiguous blocks; the first ``n % s`` shards get one
    extra cell."""
    base, extra = divmod(num_cells, shards)
    plan: list[list[int]] = []
    start = 0
    for s in range(shards):
        size = base + (1 if s < extra else 0)
        plan.append(list(range(start, start + size)))
        start += size
    return plan


def _partition_strided(num_cells: int, shards: int) -> list[list[int]]:
    """Round-robin: cell ``pe`` lives on shard ``pe % shards``."""
    return [list(range(s, num_cells, shards)) for s in range(shards)]


PARTITIONERS: dict[str, Callable[[int, int], list[list[int]]]] = {
    "contiguous": _partition_contiguous,
    "strided": _partition_strided,
}


def register_partitioner(name: str,
                         fn: Callable[[int, int], list[list[int]]]) -> None:
    """Register a custom cell->shard partitioner selectable via the
    ``REPRO_SHARD_PARTITIONER`` environment variable."""
    PARTITIONERS[name] = fn


def partition(num_cells: int, shards: int,
              name: str | None = None) -> list[list[int]]:
    """Partition ``num_cells`` cells across ``shards`` workers."""
    if name is None:
        name = os.environ.get("REPRO_SHARD_PARTITIONER", "contiguous")
    try:
        fn = PARTITIONERS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown shard partitioner {name!r}; registered: "
            f"{sorted(PARTITIONERS)}") from None
    plan = fn(num_cells, shards)
    seen = sorted(pe for block in plan for pe in block)
    if seen != list(range(num_cells)) or any(not b for b in plan):
        raise ConfigurationError(
            f"partitioner {name!r} produced an invalid plan")
    return plan


# ----------------------------------------------------------------------
# Worker-side shard state (mailboxes, oplogs, cross-shard collectives)
# ----------------------------------------------------------------------


class _WorkerAbort(Exception):
    """Parent told this worker to stop (abort/finish mid-run)."""


class _ShardState:
    """Everything one worker process needs beyond the machine itself."""

    def __init__(self, machine: Any, shard_id: int,
                 plan: list[list[int]], shard_of: list[int],
                 mailbox: Any, ring_bytes: int, conn: Any) -> None:
        self.machine = machine
        self.shard_id = shard_id
        self.plan = plan
        self.shard_of = shard_of
        self.nshards = len(plan)
        self.local = set(plan[shard_id])
        self.conn = conn
        window = _RING_HEADER + ring_bytes
        buf = mailbox.buf
        self.rings_out: dict[int, ShmRing] = {}
        self.rings_in: dict[int, ShmRing] = {}
        for peer in range(self.nshards):
            if peer == shard_id:
                continue
            off = (shard_id * self.nshards + peer) * window
            self.rings_out[peer] = ShmRing(
                buf[off:off + window], ring_bytes)
            off = (peer * self.nshards + shard_id) * window
            self.rings_in[peer] = ShmRing(
                buf[off:off + window], ring_bytes)
        self.seq_out = [0] * self.nshards
        self.seq_in = [0] * self.nshards
        self.sent = [0] * self.nshards
        self.recv = [0] * self.nshards
        self.oplog: dict[int, list[tuple]] = {pe: [] for pe in self.local}
        self.generators: dict[int, Any] = {}
        # Cross-shard barrier state: owner side counts arrivals, every
        # member shard holds a release-generation cell to spin on.
        self.owner_arrived: dict[tuple, set[int]] = {}
        self.owner_bar_gen: dict[tuple, int] = {}
        self.xbar_gen: dict[tuple, list[int]] = {}
        # Cross-shard reductions (same owner pattern, with values).
        self.owner_slots: dict[tuple, dict[int, Any]] = {}
        self.owner_ops: dict[tuple, str] = {}
        self.red_gen: dict[tuple, int] = {}
        self.red_results: dict[tuple, Any] = {}
        self.red_fetch: dict[tuple, int] = {}

    # -- oplog ---------------------------------------------------------

    def log(self, pe: int, item: tuple) -> None:
        self.oplog[pe].append(item)

    # -- frame transport -----------------------------------------------

    def push(self, dst_shard: int, kind: str, *args: Any) -> None:
        """Ship one control frame to ``dst_shard`` (back-pressured)."""
        record = pickle.dumps(
            (self.seq_out[dst_shard], kind) + args, protocol=-1)
        self.seq_out[dst_shard] += 1
        ring = self.rings_out[dst_shard]
        while not ring.try_push(record):
            # The peer's ring is full: keep our own inbound draining so
            # a cycle of full rings cannot wedge the fleet.
            if not self.drain():
                if not self._service_conn("busy"):
                    raise _WorkerAbort
                time.sleep(0.0002)
        self.sent[dst_shard] += 1

    def drain(self) -> int:
        """Apply every inbound frame; returns the number applied."""
        applied = 0
        for src in range(self.nshards):
            if src == self.shard_id:
                continue
            ring = self.rings_in[src]
            while True:
                record = ring.pop()
                if record is None:
                    break
                frame = pickle.loads(record)
                if frame[0] != self.seq_in[src]:
                    raise CommunicationError(
                        f"shard {self.shard_id}: frame from shard {src} "
                        f"out of order (got {frame[0]}, expected "
                        f"{self.seq_in[src]})")
                self.seq_in[src] += 1
                self._apply(frame[1], frame[2:])
                self.recv[src] += 1
                applied += 1
        return applied

    # -- inbound frame application (runs on the owning worker) ---------

    def _apply(self, kind: str, args: tuple) -> None:
        m = self.machine
        if kind == "put":
            dst, raddr, stride, nbytes, recv_flag = args
            cell = m.hw_cells[dst]
            paddr = cell.mc.translate(raddr, stride.extent_bytes,
                                      write=True)
            _account_dma(cell.msc.recv_dma, nbytes)
            if cell.msc.cache is not None:
                cell.msc.cache.invalidate_range(paddr, stride.extent_bytes)
            cell.msc.stats.puts_received += 1
            cell.mc.increment_flag(recv_flag)
            m.wake(dst)
        elif kind == "get":
            dst, nbytes = args
            msc = m.hw_cells[dst].msc
            msc.stats.get_requests_received += 1
            msc.get_reply_queue.push(None, 8)
            msc.get_reply_queue.pop()
            _account_dma(msc.send_dma, nbytes)
            msc.stats.get_replies_sent += 1
            m.wake(dst)
        elif kind == "snd":
            dst, src_pe, context, payload, serial = args
            packet = Packet(kind=PacketKind.SEND, src=src_pe, dst=dst,
                            payload_bytes=len(payload), data=payload,
                            context=context, serial=serial)
            msc = m.hw_cells[dst].msc
            msc.stats.sends_received += 1
            msc.send_sink(packet)
            m.wake(dst)
        elif kind == "rst":
            dst, raddr, nbytes = args
            cell = m.hw_cells[dst]
            paddr = cell.mc.translate(raddr, nbytes, write=True)
            _account_dma(cell.msc.recv_dma, nbytes)
            if cell.msc.cache is not None:
                cell.msc.cache.invalidate_range(paddr, nbytes)
            m.wake(dst)
        elif kind == "rld":
            (dst,) = args
            msc = m.hw_cells[dst].msc
            msc.remote_load_reply_queue.push(None, 8)
            msc.remote_load_reply_queue.pop()
            m.wake(dst)
        elif kind == "creg":
            dst, index, value = args
            m.hw_cells[dst].mc.registers.store(index, value)
            m.wake(dst)
        elif kind == "arr":
            members, pe = args
            self.owner_arrive(members, pe)
        elif kind == "rel":
            members, gen = args
            self.apply_release(members, gen)
        elif kind == "ctb":
            members, gen, pe, value, op = args
            self.owner_contribute(members, gen, pe, value, op)
        elif kind == "res":
            members, gen, value = args
            self.apply_result(members, gen, value)
        else:  # pragma: no cover - vocabulary is closed
            raise CommunicationError(f"unknown shard frame {kind!r}")

    # -- cross-shard barrier (owner = shard of the lowest member) ------

    def shards_of(self, members: tuple[int, ...]) -> list[int]:
        return sorted({self.shard_of[m] for m in members})

    def group_local(self, members: tuple[int, ...]) -> bool:
        return all(self.shard_of[m] == self.shard_id for m in members)

    def barrier_arrive_cross(self, members: tuple[int, ...],
                             pe: int) -> None:
        owner = self.shard_of[min(members)]
        if owner == self.shard_id:
            self.owner_arrive(members, pe)
        else:
            self.push(owner, "arr", members, pe)

    def owner_arrive(self, members: tuple[int, ...], pe: int) -> None:
        arrived = self.owner_arrived.setdefault(members, set())
        if pe in arrived:
            raise CommunicationError(
                f"cell {pe} arrived twice at barrier of group {members}")
        arrived.add(pe)
        if len(arrived) < len(members):
            return
        arrived.clear()
        gen = self.owner_bar_gen.get(members, 0) + 1
        self.owner_bar_gen[members] = gen
        for shard in self.shards_of(members):
            if shard == self.shard_id:
                self.apply_release(members, gen)
            else:
                self.push(shard, "rel", members, gen)

    def apply_release(self, members: tuple[int, ...], gen: int) -> None:
        cell = self.xbar_gen.setdefault(members, [0])
        cell[0] = gen
        self.machine.note_progress()
        self.machine.wake_group(
            tuple(m for m in members if self.shard_of[m] == self.shard_id))

    # -- cross-shard reductions ----------------------------------------

    def reduce_cross(self, members: tuple[int, ...], pe: int,
                     value: Any, op: str):
        """Generator: one member's part of a cross-shard reduction."""
        if pe not in members:
            raise CommunicationError(
                f"cell {pe} reducing with group {members} it does not "
                "belong to")
        gen = self.red_gen.get((members, pe), 0)
        self.red_gen[(members, pe)] = gen + 1
        owner = self.shard_of[min(members)]
        if owner == self.shard_id:
            self.owner_contribute(members, gen, pe, value, op)
        else:
            self.push(owner, "ctb", members, gen, pe, value, op)
        key = (members, gen)
        while key not in self.red_results:
            yield
        self.machine.note_progress()
        result = self.red_results[key]
        self.red_fetch[key] = self.red_fetch.get(key, 0) + 1
        nlocal = sum(1 for m in members
                     if self.shard_of[m] == self.shard_id)
        if self.red_fetch[key] >= nlocal:
            del self.red_results[key]
            del self.red_fetch[key]
        return result

    def owner_contribute(self, members: tuple[int, ...], gen: int,
                         pe: int, value: Any, op: str) -> None:
        key = (members, gen)
        slot = self.owner_slots.setdefault(key, {})
        if pe in slot:
            raise CommunicationError(
                f"cell {pe} contributed twice to reduction {gen} of "
                f"group {members}")
        slot[pe] = value
        self.owner_ops.setdefault(key, op)
        if len(slot) < len(members):
            return
        contributions = [slot[m] for m in members]
        result = functools.reduce(
            lambda a, b: _combine_values(self.owner_ops[key], a, b),
            contributions)
        del self.owner_slots[key]
        del self.owner_ops[key]
        for shard in self.shards_of(members):
            if shard == self.shard_id:
                self.apply_result(members, gen, result)
            else:
                self.push(shard, "res", members, gen, result)

    def apply_result(self, members: tuple[int, ...], gen: int,
                     value: Any) -> None:
        self.red_results[(members, gen)] = value
        self.machine.note_progress()
        self.machine.wake_group(
            tuple(m for m in members if self.shard_of[m] == self.shard_id))

    # -- cross-shard PUT/GET emulation (runs on the issuing worker) ----

    def inject_parity(self, packet: Packet) -> None:
        """Account one emulated packet crossing as the serial T-net
        would (serial stamp, inject+deliver counters, observer hook)."""
        tnet = self.machine.tnet
        packet.serial = tnet._next_serial
        tnet._next_serial += 1
        tnet.injected_count += 1
        tnet.delivered_count += 1
        obs = self.machine.obs
        if obs is not None:
            obs.on_inject(packet)

    def emulate_put(self, ctx: "_ShardCellContext",
                    command: Command) -> None:
        msc = ctx.hw.msc
        msc.user_send_queue.push(command, command.words)
        msc.user_send_queue.pop()
        data = msc._gather_payload(command)
        stride = (command.recv_stride.count > 1
                  or command.send_stride.count > 1)
        self.inject_parity(Packet(
            kind=PacketKind.PUT_STRIDE if stride else PacketKind.PUT,
            src=ctx.pe, dst=command.dst, payload_bytes=len(data),
            remote_addr=command.raddr, recv_flag=command.recv_flag,
            recv_stride=command.recv_stride, context=command.context))
        msc.stats.puts_sent += 1
        msc.mc.increment_flag(command.send_flag)
        # PGAS fast path: scatter straight into the destination shard's
        # shared segment; receive-side bookkeeping ships as a frame.
        dcell = self.machine.hw_cells[command.dst]
        paddr = dcell.mc.translate(
            command.raddr, command.recv_stride.extent_bytes, write=True)
        dcell.memory.scatter(paddr, command.recv_stride, data)
        self.push(self.shard_of[command.dst], "put", command.dst,
                  command.raddr, command.recv_stride, len(data),
                  command.recv_flag)

    def emulate_get(self, ctx: "_ShardCellContext",
                    command: Command) -> None:
        msc = ctx.hw.msc
        msc.user_send_queue.push(command, command.words)
        msc.user_send_queue.pop()
        self.inject_parity(Packet(
            kind=PacketKind.GET_REQUEST, src=ctx.pe, dst=command.dst,
            payload_bytes=0, remote_addr=command.raddr,
            local_addr=command.laddr, recv_flag=command.recv_flag,
            send_stride=command.send_stride,
            recv_stride=command.recv_stride, context=command.context))
        msc.stats.gets_sent += 1
        msc.mc.increment_flag(command.send_flag)
        if command.raddr == 0:
            data = b""   # acknowledge idiom: reply carries no payload
        else:
            dcell = self.machine.hw_cells[command.dst]
            paddr = dcell.mc.translate(
                command.raddr, command.send_stride.extent_bytes,
                write=False)
            data = dcell.memory.gather(paddr, command.send_stride)
        self.inject_parity(Packet(
            kind=PacketKind.GET_REPLY, src=command.dst, dst=ctx.pe,
            payload_bytes=len(data), remote_addr=command.laddr,
            recv_flag=command.recv_flag,
            recv_stride=command.recv_stride))
        if data:
            msc._scatter_with_invalidate(
                command.laddr, command.recv_stride, data)
        msc.stats.get_replies_received += 1
        msc.mc.increment_flag(command.recv_flag)
        self.push(self.shard_of[command.dst], "get", command.dst,
                  len(data))

    # -- idle / parent-connection protocol -----------------------------

    def _report(self) -> str:
        return self.machine._deadlock_report(self.generators)

    def _service_conn(self, state: str) -> bool:
        """Answer parent control messages; False means stop running.

        ``state`` names what a probe reply should claim about this
        worker; the parent only trusts quiescence claims ("idle"/"done")
        whose pairwise frame counters match across the fleet.
        """
        while self.conn.poll():
            msg = self.conn.recv()
            if msg[0] == "probe":
                self.conn.send(("probe-reply", msg[1], state,
                                list(self.sent), list(self.recv)))
            elif msg[0] == "abort":
                return False
            else:  # pragma: no cover - parent protocol is closed
                raise CommunicationError(
                    f"unexpected parent message {msg[0]!r}")
        return True

    def idle_wait(self) -> bool:
        """Block until inbound frames arrive (True) or the parent stops
        the run (False)."""
        announced = False
        delay = 0.0
        while True:
            if self.drain():
                if announced:
                    self.conn.send(("busy",))
                return True
            if not self._service_conn("idle"):
                return False
            if os.getppid() == 1:  # parent died; don't linger as orphan
                raise _WorkerAbort
            if not announced:
                self.conn.send(("idle", list(self.sent),
                                list(self.recv), self._report()))
                announced = True
            time.sleep(delay)
            delay = min(0.002, delay + 0.0005)


def _account_dma(dma: Any, nbytes: int) -> None:
    """Mirror the destination-side DMA accounting of a shipped frame."""
    if nbytes:
        dma._account(nbytes)


# ----------------------------------------------------------------------
# Worker-side cell context: real hardware effects + oplog
# ----------------------------------------------------------------------


class _ShardCellContext(CellContext):
    """A :class:`CellContext` that logs scheduling effects per cell.

    Local operations run the unmodified hardware path; cross-shard
    operations are emulated against the destination's shared segment.
    Either way every operation appends oplog items that let the parent
    replay the exact serial schedule (see module docstring).
    """

    def __init__(self, machine: "Machine", pe: int,
                 sh: _ShardState) -> None:
        self._sh = sh
        super().__init__(machine, pe)

    # Trace events are *built* here but recorded only at replay, where
    # the parent assigns the canonical global sequence numbers.
    def _trace(self, kind: EventKind, **fields) -> TraceEvent:
        ev = TraceEvent(kind, pe=self.pe, **fields)
        self._sh.log(self.pe, ("ev", ev))
        return ev

    def _issue(self, command: Command) -> None:
        sh = self._sh
        pe = self.pe
        incs = []
        if command.kind is CommandKind.GET:
            # Both flags of a GET live on the requesting cell.
            if command.send_flag != NO_FLAG:
                incs.append((pe, command.send_flag))
            if command.recv_flag != NO_FLAG:
                incs.append((pe, command.recv_flag))
            ninject = 2     # request + reply
        else:
            if command.send_flag != NO_FLAG:
                incs.append((pe, command.send_flag))
            if command.recv_flag != NO_FLAG:
                incs.append((command.dst, command.recv_flag))
            ninject = 1
        sh.log(pe, ("op", tuple(incs), (pe, command.dst), ninject))
        if sh.shard_of[command.dst] == sh.shard_id:
            super()._issue(command)
        elif command.kind is CommandKind.GET:
            sh.emulate_get(self, command)
        else:
            sh.emulate_put(self, command)

    def send(self, dst: int, data: "np.ndarray | bytes", *,
             context: int = 0) -> None:
        payload = (data.tobytes() if isinstance(data, np.ndarray)
                   else bytes(data))
        sh = self._sh
        sh.log(self.pe, ("snd", dst, context))
        if sh.shard_of[dst] == sh.shard_id:
            packet = self.hw.msc.send_message(dst, payload,
                                              context=context)
            self._trace(EventKind.SEND, partner=dst, size=len(payload),
                        msg_id=packet.serial)
            self.machine.pump()
        else:
            packet = Packet(kind=PacketKind.SEND, src=self.pe, dst=dst,
                            payload_bytes=len(payload), data=payload,
                            context=context)
            sh.inject_parity(packet)
            self.hw.msc.stats.sends_sent += 1
            self._trace(EventKind.SEND, partner=dst, size=len(payload),
                        msg_id=packet.serial)
            sh.push(sh.shard_of[dst], "snd", dst, self.pe, context,
                    payload, packet.serial)

    def recv(self, src: int | None = None, context: int | None = None,
             in_place: bool = False):
        if src is None:
            raise CommunicationError(
                "the sharded engine requires recv(src=...): wildcard "
                "receives are timing-dependent across shards (run with "
                "scheduler='batched' for wildcard matching)")
        self._sh.log(self.pe, ("wr", src, context))
        while True:
            taker = (self.ring.consume_in_place if in_place
                     else self.ring.receive)
            packet = taker(src=src, context=context)
            if packet is not None:
                break
            yield
        self.machine.note_progress()
        self._trace(EventKind.RECV, partner=packet.src,
                    size=packet.payload_bytes, msg_id=packet.serial)
        return packet

    def flag_wait(self, flag, target: int):
        self._trace(EventKind.FLAG_WAIT, flag=flag.id_on(self.pe),
                    target=int(target))
        self._sh.log(self.pe, ("wf", flag.addr, int(target)))
        waits = self.machine._flag_waits
        waits[self.pe] = (flag.id_on(self.pe), int(target), flag.addr)
        while self.hw.mc.read_flag(flag.addr) < target:
            yield
        waits.pop(self.pe, None)
        self.machine.note_progress()

    def flag_clear(self, flag) -> None:
        self._sh.log(self.pe, ("fc", flag.addr))
        self.hw.mc.write_flag(flag.addr, 0)

    def make_group(self, members) -> Group:
        key = tuple(sorted(set(int(m) for m in members)))
        gid = self.machine.trace.groups.intern(key)
        self._sh.log(self.pe, ("grp", key))
        return Group(gid=gid, members=key)

    def barrier(self, group: Group | None = None):
        grp = group or self.world
        self._trace(EventKind.BARRIER, group=grp.gid,
                    group_size=grp.size)
        sh = self._sh
        sh.log(self.pe, ("bar", grp.members))
        if sh.group_local(grp.members):
            generation = self.machine.barrier_arrive(grp, self.pe)
            while not self.machine.barrier_passed(grp.gid, generation):
                yield
        else:
            if self.pe not in grp.members:
                raise CommunicationError(
                    f"cell {self.pe} synchronizing with group "
                    f"{grp.gid} it does not belong to")
            holder = sh.xbar_gen.setdefault(grp.members, [0])
            gen = holder[0]
            sh.barrier_arrive_cross(grp.members, self.pe)
            while holder[0] <= gen:
                yield
        self.machine.note_progress()

    def gop(self, value: float, op: str = "sum",
            group: Group | None = None):
        grp = group or self.world
        self._trace(EventKind.GOP, group=grp.gid, group_size=grp.size,
                    size=8)
        sh = self._sh
        sh.log(self.pe, ("red", grp.members))
        if sh.group_local(grp.members):
            result = yield from self.machine.reduce(
                grp, self.pe, float(value), op)
        else:
            result = yield from sh.reduce_cross(
                grp.members, self.pe, float(value), op)
        return result

    def vgop(self, vector: np.ndarray, op: str = "sum",
             group: Group | None = None):
        grp = group or self.world
        self._trace(EventKind.VGOP, group=grp.gid, group_size=grp.size,
                    size=int(vector.nbytes))
        sh = self._sh
        sh.log(self.pe, ("red", grp.members))
        if sh.group_local(grp.members):
            result = yield from self.machine.reduce(
                grp, self.pe, np.array(vector, copy=True), op)
        else:
            result = yield from sh.reduce_cross(
                grp.members, self.pe, np.array(vector, copy=True), op)
        return np.array(result, copy=True)

    def creg_store(self, dst: int, index: int, value: int) -> None:
        self._trace(EventKind.CREG_STORE, partner=dst, size=4)
        sh = self._sh
        sh.log(self.pe, ("cs", dst, index))
        if sh.shard_of[dst] == sh.shard_id:
            self.machine.hw_cells[dst].mc.registers.store(index, value)
            self.machine.wake(dst)
        else:
            sh.push(sh.shard_of[dst], "creg", dst, index, value)
        self.machine.note_progress()

    def creg_load(self, index: int):
        self._trace(EventKind.CREG_LOAD, partner=self.pe, size=4)
        self._sh.log(self.pe, ("cl", index))
        while True:
            value = self.hw.mc.registers.try_load(index)
            if value is not None:
                break
            yield
        self.machine.note_progress()
        return value


class _WorkerMachine(Machine):
    """The inherited machine, re-classed inside a worker process.

    Only the distributed-shared-memory entry points need overriding:
    everything else either stays local (pump, collectives via the
    context overrides) or is emulated by :class:`_ShardCellContext`.
    """

    _shard: _ShardState

    def remote_store(self, src: int, dst: int, remote_addr: int,
                     data: bytes) -> None:
        sh = self._shard
        sh.log(src, ("op", (), (src, dst), 2))   # STORE + ACK packets
        if sh.shard_of[dst] == sh.shard_id:
            return super().remote_store(src, dst, remote_addr, data)
        scratch = self.alloc_scratch(src, data)
        command = Command(
            kind=CommandKind.REMOTE_STORE, dst=dst, raddr=remote_addr,
            laddr=scratch.addr,
            send_stride=StrideSpec.contiguous(len(data)),
            recv_stride=StrideSpec.contiguous(len(data)))
        msc = self.hw_cells[src].msc
        msc.remote_access_queue.push(command, command.words)
        msc.remote_access_queue.pop()
        payload = msc._gather_payload(command)
        sh.inject_parity(Packet(
            kind=PacketKind.REMOTE_STORE, src=src, dst=dst,
            payload_bytes=len(payload), remote_addr=remote_addr))
        msc.stats.remote_stores += 1
        dcell = self.hw_cells[dst]
        paddr = dcell.mc.translate(remote_addr, len(payload), write=True)
        dcell.memory.scatter(
            paddr, StrideSpec.contiguous(len(payload)), payload)
        sh.inject_parity(Packet(
            kind=PacketKind.REMOTE_STORE_ACK, src=dst, dst=src,
            payload_bytes=0))
        msc.remote_store_acks += 1
        sh.push(sh.shard_of[dst], "rst", dst, remote_addr, len(payload))

    def remote_load(self, src: int, target: int, remote_addr: int,
                    size: int) -> bytes:
        sh = self._shard
        sh.log(src, ("op", (), (src, target), 2))  # LOAD + REPLY packets
        if sh.shard_of[target] == sh.shard_id:
            return super().remote_load(src, target, remote_addr, size)
        scratch = self.alloc_scratch(src, bytes(size))
        command = Command(
            kind=CommandKind.REMOTE_LOAD, dst=target, raddr=remote_addr,
            laddr=scratch.addr, send_stride=StrideSpec.contiguous(size),
            recv_stride=StrideSpec.contiguous(size))
        msc = self.hw_cells[src].msc
        msc.remote_access_queue.push(command, command.words)
        msc.remote_access_queue.pop()
        sh.inject_parity(Packet(
            kind=PacketKind.REMOTE_LOAD, src=src, dst=target,
            payload_bytes=0, remote_addr=remote_addr,
            local_addr=scratch.addr,
            send_stride=command.send_stride))
        msc.stats.remote_loads += 1
        dcell = self.hw_cells[target]
        paddr = dcell.mc.translate(remote_addr, size, write=False)
        data = dcell.memory.read(paddr, size)
        sh.inject_parity(Packet(
            kind=PacketKind.REMOTE_LOAD_REPLY, src=target, dst=src,
            payload_bytes=len(data), remote_addr=scratch.addr))
        sh.push(sh.shard_of[target], "rld", target)
        return data


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------

#: Queue counters shipped back to the parent (see CommandQueue).
_QUEUE_COUNTERS = ("pushed", "popped", "spilled", "high_water_words",
                   "refill_interrupts", "allocation_interrupts")


def _worker_main(machine: Machine, shard_id: int, plan: list[list[int]],
                 shard_of: list[int], mailbox: Any, ring_bytes: int,
                 conn: Any, program: Callable, args: tuple,
                 kwargs: dict) -> None:
    """Entry point of one forked worker process."""
    t0_proc = time.process_time()
    t0_wall = time.perf_counter()
    try:
        sh = _ShardState(machine, shard_id, plan, shard_of, mailbox,
                         ring_bytes, conn)
        machine.__class__ = _WorkerMachine
        machine._shard = sh
        results = _worker_run(machine, sh, program, args, kwargs)
        conn.send(("done",))
        if not _service_done(sh):
            return
        payload = _collect_payload(machine, sh, results,
                                   t0_proc, t0_wall)
        conn.send(("payload", payload))
    except (_WorkerAbort, EOFError, BrokenPipeError):
        pass
    except BaseException as exc:  # ship the failure to the parent
        tb = traceback.format_exc()
        try:
            conn.send(("error", exc, tb))
        except Exception:
            try:
                conn.send(("error",
                           f"{type(exc).__name__}: {exc}", tb))
            except Exception:
                pass


def _worker_run(machine: Machine, sh: _ShardState, program: Callable,
                args: tuple, kwargs: dict) -> dict[int, Any]:
    """Run this shard's cells under a local batched scheduler.

    The local loop mirrors :meth:`Machine._run_batched` over the
    shard's cells only; its interleaving does *not* have to match the
    serial schedule (the replay re-establishes that), it only has to
    respect each cell's own program order — which any generator
    scheduler does.
    """
    local = sorted(sh.local)
    results: dict[int, Any] = {}
    generators = sh.generators
    contexts = {pe: _ShardCellContext(machine, pe, sh) for pe in local}
    for pe in local:
        outcome = program(contexts[pe], *args, **kwargs)
        if inspect.isgenerator(outcome):
            generators[pe] = outcome
        else:
            results[pe] = outcome
    sh.gen_cells = sorted(generators)
    wake: set[int] = set()
    machine._wake = wake
    try:
        pending = set(generators)
        heap = sorted(pending)
        done: set[int] = set()
        nxt: set[int] = set()
        while True:
            while heap:
                pe = heapq.heappop(heap)
                if pe not in pending:
                    continue
                pending.discard(pe)
                done.add(pe)
                machine._resumes[pe] += 1
                try:
                    next(generators[pe])
                except StopIteration as stop:
                    results[pe] = stop.value
                    del generators[pe]
                    machine._finished_cells.add(pe)
                    machine.progress += 1
                if wake:
                    for w in wake:
                        if w > pe and w not in done and w in generators:
                            if w not in pending:
                                pending.add(w)
                                heapq.heappush(heap, w)
                        else:
                            nxt.add(w)
                    wake.clear()
            if not generators:
                return results
            sh.drain()   # pick up cross-shard frames between rounds
            if wake:
                nxt.update(wake)
                wake.clear()
            pending = {w for w in nxt if w in generators}
            heap = sorted(pending)
            done.clear()
            nxt.clear()
            while not heap:
                if not sh.idle_wait():
                    raise _WorkerAbort
                if wake:
                    pending = {w for w in wake if w in generators}
                    wake.clear()
                    heap = sorted(pending)
    finally:
        machine._wake = None


def _service_done(sh: _ShardState) -> bool:
    """Post-run service loop: a finished worker may still own barrier,
    reduction, or receive-side state other shards keep targeting.  Ends
    at the parent's "collect" (True) or "abort" (False)."""
    conn = sh.conn
    while True:
        sh.drain()
        if conn.poll(0.005):
            msg = conn.recv()
            if msg[0] == "probe":
                conn.send(("probe-reply", msg[1], "done",
                           list(sh.sent), list(sh.recv)))
            elif msg[0] == "collect":
                sh.drain()
                return True
            elif msg[0] == "abort":
                return False
        if os.getppid() == 1:   # orphaned: parent is gone
            return False


def _collect_payload(machine: Machine, sh: _ShardState,
                     results: dict[int, Any], t0_proc: float,
                     t0_wall: float) -> dict[str, Any]:
    """Everything the parent needs: oplogs, results, and counters."""
    cells: dict[int, dict[str, Any]] = {}
    for pe in sorted(sh.local):
        msc = machine.hw_cells[pe].msc
        cells[pe] = {
            "stats": asdict(msc.stats),
            "acks": msc.remote_store_acks,
            "queues": [{k: getattr(q, k) for k in _QUEUE_COUNTERS}
                       for q in msc.all_queues()],
            "send_dma": msc.send_dma.snapshot(),
            "recv_dma": msc.recv_dma.snapshot(),
            "heap": machine._heap_next[pe],
            "private": machine._private_next[pe],
        }
    obs = machine.obs
    return {
        "shard": sh.shard_id,
        "results": results,
        "oplog": sh.oplog,
        "gen_cells": sh.gen_cells,
        "groups": dict(machine.trace.groups._groups),
        "phases": list(machine.trace._phase_labels),
        "cells": cells,
        "tnet": (machine.tnet.injected_count,
                 machine.tnet.delivered_count),
        "bnet": machine.bnet.broadcast_count,
        "obs": (None if obs is None else {
            "link_frames": dict(obs.link_frames),
            "link_bytes": dict(obs.link_bytes),
            "bnet_frames": obs.bnet_frames,
            "bnet_bytes": obs.bnet_bytes,
            "occupancy": [list(s) for s in obs.occupancy_series],
        }),
        "busy_s": time.process_time() - t0_proc,
        "wall_s": time.perf_counter() - t0_wall,
    }


# ----------------------------------------------------------------------
# Parent: setup, supervision, counter install
# ----------------------------------------------------------------------


def sharded_supported() -> bool:
    """The engine needs fork (workers inherit the machine's mappings)."""
    return "fork" in mp.get_all_start_methods()


def eligible(machine: Machine) -> bool:
    """Can this run use the sharded engine (else: batched fallback)?

    The cell memories are re-bound to *fresh* shared segments without
    copying, so the machine must be unused (no events, no traffic, no
    allocations); fault plans and armed checkpoint gates key on global
    scheduling state the workers cannot see, so they fall back too.
    """
    initial_heap = _align(flag_area_end(), 64)
    return (machine.fault_plan is None
            and machine.checkpoint_dir is None
            and not machine._ckpt_enabled()
            and machine._restore_states is None
            and machine._restore_ctx is None
            and not machine._restore_killed
            and machine.trace.total_events == 0
            and machine.tnet.injected_count == 0
            and all(h == initial_heap for h in machine._heap_next)
            and all(p == machine.config.memory_per_cell
                    for p in machine._private_next)
            and sharded_supported())


def _align(value: int, alignment: int) -> int:
    return (value + alignment - 1) // alignment * alignment


def _bind_shared_memory(machine: Machine, plan: list[list[int]],
                        pool: SegmentPool) -> None:
    """Re-back every cell's DRAM with a per-shard shared segment.

    The machine is fresh (see :func:`eligible`), so both the old numpy
    buffers and the new segments are all-zero — no copy needed.  Array
    views carved out later (``ctx.alloc``) land in shared memory
    automatically, and the parent's own views stay valid after the
    workers exit because the pool unlinks without unmapping.
    """
    mem = machine.config.memory_per_cell
    for block in plan:
        seg = pool.create(len(block) * mem)
        for i, pe in enumerate(block):
            view = np.frombuffer(seg.buf, dtype=np.uint8, count=mem,
                                 offset=i * mem)
            machine.hw_cells[pe].memory._buf = view


def run_sharded(machine: Machine, program: Callable, args: tuple,
                kwargs: dict) -> list[Any]:
    """Execute ``program`` across worker processes; byte-identical to
    the serial batched engine (see module docstring)."""
    config = machine.config
    n = config.num_cells
    nshards = min(config.shards, n)
    partitioner = os.environ.get("REPRO_SHARD_PARTITIONER", "contiguous")
    plan = partition(n, nshards, partitioner)
    shard_of = [0] * n
    for s, block in enumerate(plan):
        for pe in block:
            shard_of[pe] = s
    ring_bytes = int(os.environ.get("REPRO_SHARD_RING_BYTES",
                                    DEFAULT_RING_BYTES))
    t0_wall = time.perf_counter()
    machine._finished_cells = set()
    ctx = mp.get_context("fork")
    procs: list[Any] = []
    conns: list[Any] = []
    pool = SegmentPool()
    with pool:
        _bind_shared_memory(machine, plan, pool)
        window = _RING_HEADER + ring_bytes
        mailbox = pool.create(nshards * nshards * window)
        for shard in range(nshards):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(machine, shard, plan, shard_of, mailbox,
                      ring_bytes, child_conn, program, args, kwargs),
                daemon=True)
            proc.start()
            child_conn.close()
            procs.append(proc)
            conns.append(parent_conn)
        try:
            payloads = _supervise(conns, procs)
        finally:
            for proc in procs:
                if proc.is_alive():
                    proc.terminate()
            for proc in procs:
                proc.join(timeout=10)
            for conn in conns:
                conn.close()
        t0_replay = time.process_time()
        results = _install_counters(machine, payloads)
        _replay(machine, shard_of, payloads)
        replay_s = time.process_time() - t0_replay
    busy = [pl["busy_s"] for pl in payloads]
    machine.shard_report = {
        "shards": nshards,
        "partitioner": partitioner,
        "plan": [len(block) for block in plan],
        "worker_busy_s": busy,
        "worker_wall_s": [pl["wall_s"] for pl in payloads],
        "replay_s": replay_s,
        "wall_s": time.perf_counter() - t0_wall,
        # Modeled parallel makespan on an unloaded machine: the slowest
        # worker's CPU time plus the parent's serial replay (the right
        # metric on CI boxes where P workers share few cores).
        "critical_path_s": max(busy) + replay_s,
        "occupancy": {pl["shard"]: pl["obs"]["occupancy"]
                      for pl in payloads if pl["obs"] is not None},
    }
    return results


def _supervise(conns: list[Any], procs: list[Any]) -> list[dict]:
    """Parent control loop: route messages, detect global quiescence.

    Quiescence (all workers idle/done AND every pair's sent/recv frame
    counters match) with any worker still blocked is a deadlock; with
    all workers done it is completion, and payloads are collected only
    then — so late cross-shard frames can never be lost.
    """
    from multiprocessing.connection import wait as conn_wait

    n = len(conns)
    state = ["active"] * n
    reports = [""] * n
    probing = False
    probe_token = 0
    replies: dict[int, tuple[str, list[int], list[int]]] = {}

    def reset_probe() -> None:
        nonlocal probing
        probing = False
        replies.clear()

    while True:
        ready = conn_wait(conns, timeout=0.05)
        for conn in ready:
            i = conns.index(conn)
            try:
                while conn.poll():
                    msg = conn.recv()
                    kind = msg[0]
                    if kind == "idle":
                        state[i] = "idle"
                        reports[i] = msg[3]
                        reset_probe()
                    elif kind == "busy":
                        state[i] = "active"
                        reset_probe()
                    elif kind == "done":
                        state[i] = "done"
                        reset_probe()
                    elif kind == "probe-reply":
                        if probing and msg[1] == probe_token:
                            replies[i] = (msg[2], msg[3], msg[4])
                    elif kind == "error":
                        _raise_worker_error(i, msg[1], msg[2])
                    else:
                        raise CommunicationError(
                            f"unexpected worker message {kind!r}")
            except EOFError:
                raise CommunicationError(
                    f"shard worker {i} closed its pipe mid-run"
                ) from None
        for i, proc in enumerate(procs):
            if state[i] != "done" and not proc.is_alive():
                raise CommunicationError(
                    f"shard worker {i} died unexpectedly (exit code "
                    f"{proc.exitcode})")
        if probing and len(replies) == n:
            quiescent = (
                all(st in ("idle", "done")
                    for st, _, _ in replies.values())
                and all(replies[i][1][j] == replies[j][2][i]
                        for i in range(n) for j in range(n) if i != j))
            if quiescent:
                if all(st == "done" for st, _, _ in replies.values()):
                    return _collect_all(conns)
                body = "\n".join(r for r in reports if r)
                raise DeadlockError(
                    "sharded run quiescent with blocked cells\n" + body)
            reset_probe()
        if not probing and all(st in ("idle", "done") for st in state):
            probe_token += 1
            probing = True
            replies.clear()
            for conn in conns:
                conn.send(("probe", probe_token))


def _collect_all(conns: list[Any]) -> list[dict]:
    """Global quiescence proven: pull every worker's final payload."""
    for conn in conns:
        conn.send(("collect",))
    payloads: list[dict] = []
    for i, conn in enumerate(conns):
        while True:
            msg = conn.recv()
            if msg[0] == "payload":
                payloads.append(msg[1])
                break
            if msg[0] == "error":
                _raise_worker_error(i, msg[1], msg[2])
            if msg[0] not in ("idle", "busy", "done", "probe-reply"):
                raise CommunicationError(
                    f"unexpected worker message {msg[0]!r} at collect")
    return payloads


def _raise_worker_error(shard: int, exc: Any, tb: str) -> None:
    if isinstance(exc, str):
        exc = CommunicationError(exc)
    exc.add_note(f"shard worker {shard} traceback:\n{tb}")
    raise exc


def _install_counters(machine: Machine,
                      payloads: list[dict]) -> list[Any]:
    """Install worker-side results and hardware counters into the
    parent machine; returns the assembled per-cell results list."""
    results: list[Any] = [None] * machine.config.num_cells
    for pl in sorted(payloads, key=lambda p: p["shard"]):
        for pe, value in pl["results"].items():
            results[pe] = value
        for pe, c in pl["cells"].items():
            msc = machine.hw_cells[pe].msc
            msc.stats = MSCStats(**c["stats"])
            msc.remote_store_acks = c["acks"]
            for queue, snap in zip(msc.all_queues(), c["queues"]):
                for key, value in snap.items():
                    setattr(queue, key, value)
            for dma, snap in ((msc.send_dma, c["send_dma"]),
                              (msc.recv_dma, c["recv_dma"])):
                for key, value in snap.items():
                    setattr(dma, key, value)
            machine._heap_next[pe] = c["heap"]
            machine._private_next[pe] = c["private"]
        machine.tnet.injected_count += pl["tnet"][0]
        machine.tnet.delivered_count += pl["tnet"][1]
        machine.bnet.broadcast_count += pl["bnet"]
        if machine.obs is not None and pl["obs"] is not None:
            obs = machine.obs
            for link, count in pl["obs"]["link_frames"].items():
                obs.link_frames[link] = (obs.link_frames.get(link, 0)
                                         + count)
            for link, nbytes in pl["obs"]["link_bytes"].items():
                obs.link_bytes[link] = (obs.link_bytes.get(link, 0)
                                        + nbytes)
            obs.bnet_frames += pl["obs"]["bnet_frames"]
            obs.bnet_bytes += pl["obs"]["bnet_bytes"]
    machine.tnet._next_serial = machine.tnet.injected_count
    return results


# ----------------------------------------------------------------------
# Replay: re-run the serial batched schedule over the oplogs
# ----------------------------------------------------------------------


class _Cursor:
    """One cell's position in its oplog during replay."""

    __slots__ = ("items", "idx", "wait", "pending")

    def __init__(self, items: list[tuple]) -> None:
        self.items = items
        self.idx = 0
        #: Blocking state carried across resumes (None = runnable).
        self.wait: tuple | None = None
        #: Canonical serial for the next SEND/RECV event's msg_id.
        self.pending: int | None = None


def _replay(machine: Machine, shard_of: list[int],
            payloads: list[dict]) -> None:
    """Mirror :meth:`Machine._run_batched` over the shipped oplogs.

    Cells "resume" by advancing their oplog cursor; flag increments,
    message serials, barrier releases and reduction completions replay
    in the exact serial order, so the trace records every event with
    the sequence number, msg_id, group id and phase id the serial
    engine would have assigned.
    """
    trace = machine.trace
    groups_of: dict[int, dict[int, tuple]] = {}
    phases_of: dict[int, list[str]] = {}
    oplogs: dict[int, list[tuple]] = {}
    genset: set[int] = set()
    for pl in payloads:
        groups_of[pl["shard"]] = pl["groups"]
        phases_of[pl["shard"]] = pl["phases"]
        oplogs.update(pl["oplog"])
        genset.update(pl["gen_cells"])
    world = tuple(range(machine.config.num_cells))

    flags: dict[tuple[int, int], int] = {}
    rings: dict[int, deque] = {}
    bars: dict[tuple, list] = {}     # members -> [generation, arrived]
    reds: dict[tuple, dict] = {}
    cregs: set[tuple[int, int]] = set()
    inject = 0
    cursors = {pe: _Cursor(items) for pe, items in oplogs.items()}

    def record(ev: TraceEvent) -> None:
        kind = ev.kind
        if kind in (EventKind.BARRIER, EventKind.GOP, EventKind.VGOP):
            ev.group = trace.groups.intern(
                groups_of[shard_of[ev.pe]][ev.group])
        elif kind is EventKind.PHASE:
            ev.flag = trace.phase_id(
                phases_of[shard_of[ev.pe]][ev.flag - 1])
        trace.record(ev)

    def arrive(pe: int, item: tuple, wake: set[int]) -> tuple:
        """First processing of a blocking item: apply arrival side
        effects once; returns the wait state to re-check on resumes."""
        t = item[0]
        if t == "bar":
            members = item[1]
            st = bars.setdefault(members, [0, set()])
            st[1].add(pe)
            gen = st[0]
            if len(st[1]) == len(members):
                st[1].clear()
                st[0] = gen + 1
                wake.update(members)
                if members == world:
                    for m in members:
                        machine.snet.arrive(m)
            return ("bar", members, gen)
        if t == "red":
            members = item[1]
            rd = reds.setdefault(members, {"pgen": {}, "slots": {},
                                           "ready": set(), "fetch": {}})
            g = rd["pgen"].get(pe, 0)
            rd["pgen"][pe] = g + 1
            slot = rd["slots"].setdefault(g, set())
            slot.add(pe)
            if len(slot) == len(members):
                del rd["slots"][g]
                rd["ready"].add(g)
                rd["fetch"][g] = 0
                wake.update(members)
            return ("red", members, g)
        if t == "wf":
            return ("wf", item[1], item[2])
        if t == "cl":
            return ("cl", item[1])
        assert t == "wr"
        return ("wr", item[1], item[2])

    def try_pass(cur: _Cursor, pe: int, wait: tuple) -> bool:
        """Re-check a blocking condition (mirrors the serial spin)."""
        t = wait[0]
        if t == "wf":
            return flags.get((pe, wait[1]), 0) >= wait[2]
        if t == "bar":
            return bars[wait[1]][0] > wait[2]
        if t == "red":
            members, g = wait[1], wait[2]
            rd = reds[members]
            if g not in rd["ready"]:
                return False
            rd["fetch"][g] += 1
            if rd["fetch"][g] >= len(members):
                rd["ready"].discard(g)
                del rd["fetch"][g]
            return True
        if t == "cl":
            if (pe, wait[1]) in cregs:
                cregs.discard((pe, wait[1]))  # try_load clears the p-bit
                return True
            return False
        assert t == "wr"
        queue = rings.get(pe)
        if queue:
            for i, (src, ctx_, serial) in enumerate(queue):
                if src == wait[1] and (wait[2] is None
                                       or ctx_ == wait[2]):
                    del queue[i]
                    cur.pending = serial
                    return True
        return False

    def advance(pe: int, wake: set[int]) -> bool:
        """One scheduler resume: run to the next block or to the end.
        Returns True when the cell's oplog is exhausted (finished)."""
        nonlocal inject
        cur = cursors[pe]
        items = cur.items
        while True:
            if cur.wait is not None:
                if not try_pass(cur, pe, cur.wait):
                    return False
                cur.wait = None
            if cur.idx >= len(items):
                return True
            item = items[cur.idx]
            cur.idx += 1
            t = item[0]
            if t == "ev":
                ev = item[1]
                if (cur.pending is not None
                        and ev.kind in (EventKind.SEND, EventKind.RECV)):
                    ev.msg_id = cur.pending
                    cur.pending = None
                record(ev)
            elif t == "op":
                for owner, addr in item[1]:
                    flags[(owner, addr)] = flags.get((owner, addr), 0) + 1
                wake.update(item[2])
                inject += item[3]
            elif t == "snd":
                serial = inject
                inject += 1
                rings.setdefault(item[1], deque()).append(
                    (pe, item[2], serial))
                cur.pending = serial
                wake.add(item[1])
            elif t == "fc":
                flags[(pe, item[1])] = 0
            elif t == "grp":
                trace.groups.intern(item[1])
            elif t == "cs":
                cregs.add((item[1], item[2]))
                wake.add(item[1])
            elif t in ("wf", "wr", "bar", "red", "cl"):
                cur.wait = arrive(pe, item, wake)
            else:  # pragma: no cover - vocabulary is closed
                raise CommunicationError(
                    f"unknown oplog item {t!r} during sharded replay")

    # Non-generator programs ran at creation time in the serial engine,
    # in ascending pe order, with no wake set active.
    discard: set[int] = set()
    for pe in sorted(oplogs):
        if pe not in genset:
            if not advance(pe, discard):
                raise CommunicationError(
                    f"cell {pe}: non-generator program blocked during "
                    "sharded replay")

    # The exact _run_batched loop, with next(gen) replaced by advance().
    live = set(genset)
    resumes = machine._resumes
    wake: set[int] = set()
    pending = set(live)
    heap = sorted(pending)
    done: set[int] = set()
    nxt: set[int] = set()
    while True:
        while heap:
            pe = heapq.heappop(heap)
            if pe not in pending:
                continue
            pending.discard(pe)
            done.add(pe)
            resumes[pe] += 1
            if advance(pe, wake):
                live.discard(pe)
                machine._finished_cells.add(pe)
                machine.progress += 1
            if wake:
                for w in wake:
                    if w > pe and w not in done and w in live:
                        if w not in pending:
                            pending.add(w)
                            heapq.heappush(heap, w)
                    else:
                        nxt.add(w)
                wake.clear()
        if not live:
            return
        pending = {w for w in nxt if w in live}
        heap = sorted(pending)
        done.clear()
        nxt.clear()
        if not heap:
            raise CommunicationError(
                "sharded replay diverged from the worker execution: "
                f"cells {sorted(live)[:8]} blocked with no wake "
                "pending (this is a bug in the sharded engine)")
