"""Machine configurations (Table 1).

===========================  =========================================
Processor                    SuperSPARC (50 MHz)
Processor performance        50 MFLOPS
Memory per cell              16, 64 megabytes
Cache per cell               36 kilobytes, write-through
System configuration         4 - 1024 cells
System performance           0.2 - 51.2 GFLOPS
===========================  =========================================

The same chassis also describes the predecessor AP1000 (25 MHz SPARC with
software message handling); MLSim distinguishes the two via its parameter
file, but the functional machine needs processor constants for converting
operation counts into trace work.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.errors import ConfigurationError
from repro.trace.buffer import DEFAULT_CAPACITY

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.plan import FaultPlan

MEGABYTE = 1024 * 1024

#: Official cell-count range of the product (Table 1).
MIN_CELLS = 4
MAX_CELLS = 1024
#: Cell-count ceiling of the *extended* configuration: the sharded
#: multiprocess engine (:mod:`repro.machine.sharded`) scales past the
#: product catalogue, to the 4096 cells the weak-scaling study uses.
EXTENDED_MAX_CELLS = 4096
#: Official memory options per cell.
MEMORY_OPTIONS = (16 * MEGABYTE, 64 * MEGABYTE)

#: Peak floating-point performance per cell (SuperSPARC, Table 1).
PEAK_MFLOPS_PER_CELL = 50.0

#: Work unit conversion: microseconds of base-SPARC time per floating-point
#: operation.  The paper takes the SuperSPARC to be 8x the SPARC, so with
#: MLSim's AP1000+ ``computation_factor`` of 0.125 this constant yields
#: 1/0.16/0.125 = 50 MFLOPS on the AP1000+ and 6.25 MFLOPS on the AP1000.
SPARC_US_PER_FLOP = 0.16


@dataclass(frozen=True)
class MachineConfig:
    """Static configuration of a functional machine instance."""

    num_cells: int = 64
    memory_per_cell: int = 16 * MEGABYTE
    clock_mhz: float = 50.0
    cache_bytes: int = 36 * 1024
    trace_capacity: int = DEFAULT_CAPACITY
    #: Permit cell counts / memory sizes outside the product catalogue
    #: (handy for tests); official configurations leave this False.
    allow_nonstandard: bool = field(default=True)
    #: Annotate communication events with byte-range footprints for the
    #: race checker (:mod:`repro.check`).  Also switchable ambiently via
    #: :func:`repro.trace.sanitize.enabled`.
    sanitize: bool = False
    #: Attach the :mod:`repro.obs` machine observer (per-link traffic
    #: accounting and queue-occupancy sampling).  Also switchable
    #: ambiently via :func:`repro.obs.observer.enabled`.
    observe: bool = False
    #: Seeded fault-injection schedule (:mod:`repro.faults`); None runs a
    #: perfect machine.  Also switchable ambiently via
    #: :func:`repro.faults.applied`.
    fault_plan: "FaultPlan | None" = None
    #: Arm a periodic checkpoint gate: every cell parks at its N-th
    #: arrival at a ``ctx.checkpoint()`` site and a snapshot is captured
    #: once all are parked (:mod:`repro.ckpt`).  Also switchable
    #: ambiently via :func:`repro.ckpt.policy.applied`.
    checkpoint_every: int | None = None
    #: Directory snapshots are written to; None keeps captures in
    #: memory only (``machine.last_snapshot``).
    checkpoint_dir: str | None = None
    #: SPMD scheduler — a three-way choice.  ``"batched"`` parks blocked
    #: cells and resumes only those a progress bump may have woken;
    #: ``"reference"`` is the original resume-everyone-every-pass loop;
    #: ``"sharded"`` partitions the cells across worker processes with
    #: shared-memory cell DRAM (:mod:`repro.machine.sharded`).  All three
    #: produce identical traces; fault plans always use the reference
    #: loop because kill and stall schedules are keyed on per-cell resume
    #: counts.  The ``REPRO_MACHINE_SCHEDULER`` environment variable
    #: overrides the default for configs that did not pick one explicitly
    #: (the perf lane uses it to time the pre-refactor path).
    scheduler: str = ""
    #: Worker-process count for the sharded engine.  0 resolves from the
    #: ``REPRO_MACHINE_SHARDS`` environment variable (default: 2 when the
    #: scheduler is ``"sharded"``, else 1); a value > 1 implies
    #: ``scheduler="sharded"`` when no scheduler was picked explicitly.
    shards: int = 0
    #: Lift the official 4-1024 cell ceiling to ``EXTENDED_MAX_CELLS``
    #: (4096) for strict (``allow_nonstandard=False``) configurations.
    #: Official presets stay within Table 1; the extended range exists
    #: for the sharded weak-scaling study.
    extended: bool = False

    def __post_init__(self) -> None:
        if not self.scheduler:
            if self.shards > 1:
                object.__setattr__(self, "scheduler", "sharded")
            else:
                object.__setattr__(
                    self, "scheduler",
                    os.environ.get("REPRO_MACHINE_SCHEDULER", "batched"))
        if self.scheduler not in ("batched", "reference", "sharded"):
            raise ConfigurationError(
                f"unknown scheduler {self.scheduler!r}; expected 'batched', "
                "'reference' or 'sharded'")
        if self.shards == 0:
            default = 2 if self.scheduler == "sharded" else 1
            object.__setattr__(
                self, "shards",
                int(os.environ.get("REPRO_MACHINE_SHARDS", default)))
        if self.shards < 1:
            raise ConfigurationError(
                f"shards must be >= 1, got {self.shards}")
        if self.num_cells < 1:
            raise ConfigurationError("a machine needs at least one cell")
        if self.shards > self.num_cells:
            raise ConfigurationError(
                f"cannot split {self.num_cells} cells across "
                f"{self.shards} shards")
        if self.checkpoint_every is not None and self.checkpoint_every < 1:
            raise ConfigurationError(
                f"checkpoint_every must be >= 1 site, got "
                f"{self.checkpoint_every}")
        if self.memory_per_cell < 1024:
            raise ConfigurationError("cell memory unrealistically small")
        if not self.allow_nonstandard:
            max_cells = EXTENDED_MAX_CELLS if self.extended else MAX_CELLS
            if not MIN_CELLS <= self.num_cells <= max_cells:
                hint = ("" if self.extended else
                        "; pass extended=True to allow up to "
                        f"{EXTENDED_MAX_CELLS} cells on the sharded engine")
                raise ConfigurationError(
                    f"official configurations have {MIN_CELLS}-{max_cells} "
                    f"cells, got {self.num_cells}{hint}")
            if self.memory_per_cell not in MEMORY_OPTIONS:
                raise ConfigurationError(
                    f"official memory options are 16 or 64 MB per cell, got "
                    f"{self.memory_per_cell} bytes")

    @property
    def peak_mflops_per_cell(self) -> float:
        return PEAK_MFLOPS_PER_CELL * (self.clock_mhz / 50.0)

    @property
    def system_performance_gflops(self) -> float:
        """Peak system performance; 0.2 GFLOPS at 4 cells, 51.2 at 1024."""
        return self.num_cells * self.peak_mflops_per_cell / 1000.0

    @classmethod
    def official(cls, num_cells: int,
                 memory_per_cell: int = 16 * MEGABYTE) -> "MachineConfig":
        """An as-shipped configuration, validated against Table 1."""
        return cls(num_cells=num_cells, memory_per_cell=memory_per_cell,
                   allow_nonstandard=False)
