"""Ambient checkpoint policy and the signal-safe interrupt flag.

The policy travels the same way fault plans (:mod:`repro.faults.plan`)
and the sanitizer switch do: a :func:`applied` context manager sets a
:class:`ContextVar` that :class:`~repro.machine.machine.Machine`
consults at construction time, so application ``run()`` signatures stay
untouched.  Explicit :class:`~repro.machine.config.MachineConfig`
fields win over the ambient policy.

The interrupt flag is a plain :class:`threading.Event` so signal
handlers can request "checkpoint at the next gate and stop" without
touching interpreter state mid-simulation; the machine polls it only at
checkpoint sites and only when a checkpoint directory is configured.
"""

from __future__ import annotations

import contextlib
import threading
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True)
class CheckpointPolicy:
    """Checkpoint behaviour applied around a machine run.

    ``every`` arms a periodic gate: each cell parks at its ``every``-th
    arrival at a checkpoint site, a snapshot is captured once all live
    cells are parked, and the threshold advances by ``every`` again.
    ``at_site`` arms a one-shot gate at exactly that site count instead
    (used by ``repro chaos --recover`` to pick a deterministic kill
    point).  ``directory`` is where snapshots are written;
    ``stop_after_capture`` raises
    :class:`~repro.core.errors.CheckpointInterrupt` right after the
    capture, simulating a crash at the boundary.  ``resume_from`` makes
    :func:`repro.apps.base.execute` restore the named snapshot instead
    of building a fresh machine.
    """

    every: int | None = None
    at_site: int | None = None
    directory: str | None = None
    stop_after_capture: bool = False
    resume_from: str | None = None


_POLICY: ContextVar[CheckpointPolicy | None] = ContextVar(
    "repro_ckpt_policy", default=None
)


def active_policy() -> CheckpointPolicy | None:
    """Return the ambient checkpoint policy, if one is applied."""

    return _POLICY.get()


@contextlib.contextmanager
def applied(policy: CheckpointPolicy) -> Iterator[CheckpointPolicy]:
    """Apply ``policy`` to every machine built inside the block."""

    token = _POLICY.set(policy)
    try:
        yield policy
    finally:
        _POLICY.reset(token)


_INTERRUPT = threading.Event()


def request_interrupt() -> None:
    """Ask the running machine to checkpoint at its next gate and stop.

    Safe to call from a signal handler.  Has no effect on machines
    without a checkpoint directory (there is nowhere to write the
    snapshot, so the run simply continues).
    """

    _INTERRUPT.set()


def clear_interrupt() -> None:
    """Reset the interrupt flag (start of a run / after honouring it)."""

    _INTERRUPT.clear()


def interrupt_requested() -> bool:
    """True if :func:`request_interrupt` fired since the last clear."""

    return _INTERRUPT.is_set()
