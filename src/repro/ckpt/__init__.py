"""Deterministic checkpoint/restart for the functional machine.

``repro.ckpt`` is the robustness substrate the sharded-execution and
job-server roadmap items restart workers from: a
:class:`~repro.ckpt.snapshot.MachineSnapshot` captures everything that
determines forward execution at a *checkpoint gate* (a sync point every
cell program reaches cooperatively via ``ctx.checkpoint()``), and
restoring it produces a machine whose completed run is byte-identical —
trace, results, and memory — to the uninterrupted run under the same
checkpoint schedule.

The package splits into:

* :mod:`repro.ckpt.policy` — the ambient checkpoint policy (capture
  cadence, snapshot directory, resume source) applied around a run the
  same way fault plans and the sanitizer are, plus the signal-safe
  interrupt flag ``repro run`` uses to checkpoint on SIGTERM.
* :mod:`repro.ckpt.snapshot` — capture/save/load/restore of the
  versioned ``repro-ckpt-v1`` artifact (JSON header + pickled machine
  state + npz memories), refused loudly on schema or code-version
  mismatch.

See ``docs/checkpoint.md`` for the format and the safe-point contract
checkpointable applications follow.
"""

from repro.ckpt.policy import CheckpointPolicy, applied, active_policy
from repro.ckpt.snapshot import (
    CKPT_APPS,
    SCHEMA,
    MachineSnapshot,
    capture_snapshot,
    latest_snapshot,
    load_snapshot,
    restore_machine,
    resume_workload,
    save_snapshot,
)

__all__ = [
    "CKPT_APPS",
    "SCHEMA",
    "CheckpointPolicy",
    "MachineSnapshot",
    "active_policy",
    "applied",
    "capture_snapshot",
    "latest_snapshot",
    "load_snapshot",
    "restore_machine",
    "resume_workload",
    "save_snapshot",
]
