"""Versioned machine snapshots: capture, save, load, restore.

A snapshot is taken at a *checkpoint gate*: every live cell program is
parked inside ``ctx.checkpoint()`` (a cooperative safe point the
application reaches between communication phases) and the machine has
been pumped to reliable quiescence, so no T-net/B-net frame is in
flight, every command queue is drained, and every retransmit buffer's
content is explicit transport state.  What remains is a finite, fully
enumerable machine state:

* the used regions of every cell's DRAM (heap below, private area
  above — the untouched middle is zero by construction and not stored);
* the per-cell cooperative program state (the picklable ``st`` bag each
  checkpointable app keeps its loop-carried values in);
* hardware counters: MSC+ stats, command-queue/DMA/MC/cache/register
  state, ring buffers;
* network state: T-net/B-net serials and queues, S-net episodes,
  barrier and reduction generations;
* fault machinery: the plan RNG stream, injected-fault schedule, kill
  and stall ledgers, and the reliable transport's per-flow seq/ack/
  retry/reorder state;
* the whole trace buffer (the high-water mark of the recorded run).

The artifact is a directory written atomically (temp dir +
``os.replace``)::

    ckpt_000001/
        header.json     # schema, config, config/code hashes, app meta
        state.pkl       # everything above except raw memory bytes
        memories.npz    # per-cell used DRAM regions

``header.json`` carries ``schema: repro-ckpt-v1`` plus the resolved
machine config, a hash of it, and the repo code-version hash — the same
refuse-loudly pattern as ``repro-check-v1``: a snapshot from different
code or a different config never restores silently.

Restore builds a *fresh* machine from the header config and replays the
state onto it.  Generator frames cannot be pickled, so cell programs
re-run their prologue (allocations land at identical addresses because
the allocators are restarted at their initial values) and then jump to
the parked loop position recorded in ``st`` — see
:meth:`repro.machine.program.CellContext.ckpt_state`.  The completed
run is byte-identical (trace, results, memory) to the uninterrupted run
under the same checkpoint schedule.
"""

from __future__ import annotations

import json
import os
import pickle
import shutil
import tempfile
from collections import deque
from dataclasses import dataclass
from hashlib import sha256
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.core.errors import ConfigurationError
from repro.faults.plan import FaultPlan

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.machine import Machine

#: Artifact schema stamped into every snapshot header.
SCHEMA = "repro-ckpt-v1"
#: Schema versions this loader understands.
KNOWN_CKPT_SCHEMAS = frozenset({SCHEMA})

HEADER_NAME = "header.json"
STATE_NAME = "state.pkl"
MEMORY_NAME = "memories.npz"
#: Directory-name prefixes: resumable gate snapshots vs. watchdog dumps.
SNAPSHOT_PREFIX = "ckpt_"
HANG_PREFIX = "hang_"

#: The workloads whose cell programs declare checkpoint safe points
#: (``ctx.ckpt_state`` + ``ctx.checkpoint``).  ``repro chaos --recover``
#: and the roundtrip suite iterate exactly these.
CKPT_APPS = ("MatMul", "CG", "RingShift")


def _code_version() -> str:
    # Lazy: repro.bench imports reach back into machine/trace modules.
    from repro.bench.cache import code_version

    return code_version()


def config_document(machine: "Machine") -> dict[str, Any]:
    """The resolved machine configuration a snapshot is bound to.

    Checkpoint cadence fields are deliberately excluded — they live in
    the snapshot *state* (counts/threshold), not its identity: restoring
    must continue the captured schedule regardless of ambient policy.
    """
    config = machine.config
    plan = machine.fault_plan
    return {
        "num_cells": config.num_cells,
        "memory_per_cell": config.memory_per_cell,
        "clock_mhz": config.clock_mhz,
        "cache_bytes": config.cache_bytes,
        "trace_capacity": config.trace_capacity,
        "allow_nonstandard": config.allow_nonstandard,
        "sanitize": machine.sanitize,
        "scheduler": config.scheduler,
        "fault_plan": plan.to_dict() if plan is not None else None,
        "ack_policy": machine.ack_policy,
    }


def config_hash(document: dict[str, Any]) -> str:
    canonical = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class MachineSnapshot:
    """One captured machine state: header + state dict + memory images."""

    header: dict[str, Any]
    state: dict[str, Any]
    memories: dict[str, np.ndarray]

    @property
    def seq(self) -> int:
        return int(self.header["ckpt_seq"])

    @property
    def resumable(self) -> bool:
        return bool(self.header.get("resumable"))

    @property
    def app(self) -> dict[str, Any] | None:
        return self.header.get("app")


# ----------------------------------------------------------------------
# Capture
# ----------------------------------------------------------------------

def _refuse(reason: str) -> None:
    raise ConfigurationError(f"cannot capture resumable snapshot: {reason}")


def _check_resumable(machine: "Machine") -> None:
    """Everything a byte-exact restore depends on, verified loudly."""
    if machine.obs is not None:
        _refuse("the machine observer holds unserializable telemetry "
                "state; checkpoint with observe off")
    if getattr(machine, "_scratch", None) is not None:
        _refuse("remote-access scratch buffers were allocated lazily; "
                "the restored prologue could not reproduce the heap")
    generators = machine._active_generators
    if generators is None:
        _refuse("no run in progress (snapshots are taken at checkpoint "
                "gates inside Machine.run)")
    parked = machine._gate_parked
    missing = [pe for pe in generators if pe not in parked]
    if missing:
        _refuse(f"cells {missing[:8]} are not parked at a checkpoint gate")
    if machine._finished_cells:
        _refuse(f"cells {sorted(machine._finished_cells)[:8]} already "
                "finished; their results only exist in the running "
                "scheduler frame")
    if machine._flag_waits:
        _refuse(f"cells {sorted(machine._flag_waits)[:8]} are inside "
                "flag waits")
    contexts = machine._active_contexts
    assert contexts is not None
    for pe in generators:
        ctx = contexts[pe]
        if getattr(ctx, "_ckpt_st", None) is None:
            _refuse(f"cell {pe}'s program declared no checkpoint state "
                    "(ctx.ckpt_state)")
        if ctx._wt_table is not None:
            _refuse(f"cell {pe} holds write-through page bindings")
    if machine.transport is not None and not machine.transport.idle():
        _refuse("reliable transport has unacknowledged frames after pump")
    if machine.tnet.injected_count != machine.tnet.delivered_count:
        _refuse("T-net frames still in flight after pump")
    for pe, cell in enumerate(machine.hw_cells):
        if cell.msc.queued_words():
            _refuse(f"cell {pe}'s MSC+ queues are not drained")
        if cell.msc._load_replies:
            _refuse(f"cell {pe} holds unconsumed remote-load replies")


def _queue_state(queue: Any) -> dict[str, Any]:
    return {
        "entries": list(queue._queue),
        "spill": list(queue._spill),
        "queue_words": queue._queue_words,
        "spill_words": queue._spill_words,
        "spill_buffers_allocated": queue._spill_buffers_allocated,
        "refill_interrupts": queue.refill_interrupts,
        "allocation_interrupts": queue.allocation_interrupts,
        "pushed": queue.pushed,
        "popped": queue.popped,
        "spilled": queue.spilled,
        "high_water_words": queue.high_water_words,
    }


def _restore_queue(queue: Any, saved: dict[str, Any]) -> None:
    queue._queue.clear()
    queue._queue.extend(saved["entries"])
    queue._spill.clear()
    queue._spill.extend(saved["spill"])
    queue._queue_words = saved["queue_words"]
    queue._spill_words = saved["spill_words"]
    queue._spill_buffers_allocated = saved["spill_buffers_allocated"]
    queue.refill_interrupts = saved["refill_interrupts"]
    queue.allocation_interrupts = saved["allocation_interrupts"]
    queue.pushed = saved["pushed"]
    queue.popped = saved["popped"]
    queue.spilled = saved["spilled"]
    queue.high_water_words = saved["high_water_words"]


def _cell_state(machine: "Machine", pe: int) -> dict[str, Any]:
    cell = machine.hw_cells[pe]
    msc = cell.msc
    ring = machine.rings[pe]
    return {
        "msc_stats": dict(vars(msc.stats)),
        "remote_store_acks": msc.remote_store_acks,
        "load_replies": list(msc._load_replies),
        "queues": [_queue_state(q) for q in msc.all_queues()],
        "send_dma": dict(vars(msc.send_dma)),
        "recv_dma": dict(vars(msc.recv_dma)),
        "mc": {
            "flag_increments": cell.mc.flag_increments,
            "dram_reads": cell.mc.dram_reads,
            "dram_writes": cell.mc.dram_writes,
        },
        "registers": dict(vars(cell.mc.registers)),
        "cache": dict(vars(cell.cache)) if cell.cache is not None else None,
        "ring": {
            "capacity_bytes": ring.capacity_bytes,
            "messages": list(ring._messages),
            "bytes_buffered": ring.bytes_buffered,
            "allocation_interrupts": ring.allocation_interrupts,
            "extra_buffers": ring.extra_buffers,
            "deposits": ring.deposits,
            "copies_out": ring.copies_out,
            "high_water_bytes": ring.high_water_bytes,
        },
    }


def _restore_cell(machine: "Machine", pe: int, saved: dict[str, Any]) -> None:
    cell = machine.hw_cells[pe]
    msc = cell.msc
    # Stats objects are aliased (FaultyBNet shares FaultStats with the
    # T-net, msc.cache is cell.cache): always update fields in place.
    vars(msc.stats).update(saved["msc_stats"])
    msc.remote_store_acks = saved["remote_store_acks"]
    msc._load_replies = list(saved["load_replies"])
    for queue, qstate in zip(msc.all_queues(), saved["queues"]):
        _restore_queue(queue, qstate)
    vars(msc.send_dma).update(saved["send_dma"])
    vars(msc.recv_dma).update(saved["recv_dma"])
    cell.mc.flag_increments = saved["mc"]["flag_increments"]
    cell.mc.dram_reads = saved["mc"]["dram_reads"]
    cell.mc.dram_writes = saved["mc"]["dram_writes"]
    vars(cell.mc.registers).update(saved["registers"])
    if saved["cache"] is not None and cell.cache is not None:
        vars(cell.cache).update(saved["cache"])
    ring = machine.rings[pe]
    rstate = saved["ring"]
    ring.capacity_bytes = rstate["capacity_bytes"]
    ring._messages.clear()
    ring._messages.extend(rstate["messages"])
    ring.bytes_buffered = rstate["bytes_buffered"]
    ring.allocation_interrupts = rstate["allocation_interrupts"]
    ring.extra_buffers = rstate["extra_buffers"]
    ring.deposits = rstate["deposits"]
    ring.copies_out = rstate["copies_out"]
    ring.high_water_bytes = rstate["high_water_bytes"]


def capture_snapshot(machine: "Machine", *,
                     resumable: bool = True) -> MachineSnapshot:
    """Capture the machine parked at a checkpoint gate.

    With ``resumable=False`` (the watchdog's snapshot-on-deadlock dump)
    the gate preconditions are skipped and the machine is *not* pumped:
    cells may be mid-wait and in-flight state is captured as-is for
    inspection; the loader refuses to restore such a snapshot.
    """
    if resumable:
        machine.pump()
        _check_resumable(machine)
    n = machine.config.num_cells
    tnet = machine.tnet
    bnet = machine.bnet

    document = config_document(machine)
    header: dict[str, Any] = {
        "schema": SCHEMA,
        "code_version": _code_version(),
        "config": document,
        "config_hash": config_hash(document),
        "ckpt_seq": machine.ckpt_seq,
        "resumable": bool(resumable),
        "app": machine.ckpt_meta,
    }

    contexts = machine._active_contexts or []
    cell_states: dict[int, dict[str, Any]] = {}
    ctx_states: dict[int, dict[str, Any]] = {}
    for pe, ctx in enumerate(contexts):
        st = getattr(ctx, "_ckpt_st", None)
        if st is not None:
            cell_states[pe] = st.capture()
        ctx_states[pe] = {
            "puts_per_dest": dict(ctx.acks._puts_per_dest),
            "acks_issued": ctx.acks._acks_issued,
            "wt_fetches": ctx._wt_fetches,
        }

    faulty: dict[str, Any] | None = None
    if machine.fault_plan is not None:
        faulty = {
            "stats": dict(vars(tnet.stats)),
            "killed": set(tnet.killed),
            "schedule": list(tnet.schedule),
            "delayed": [[rounds, packet] for rounds, packet in tnet._delayed],
        }

    state: dict[str, Any] = {
        "progress": machine.progress,
        "resumes": list(machine._resumes),
        "killed": sorted(machine.killed),
        "stalls": {pe: list(specs)
                   for pe, specs in machine._stalls.items() if specs},
        "stall_remaining": dict(machine._stall_remaining),
        "heap_next": list(machine._heap_next),
        "private_next": list(machine._private_next),
        "ckpt": {
            "counts": list(machine._ckpt_counts),
            "threshold": machine._ckpt_threshold,
            "every": machine._ckpt_every,
            "seq": machine.ckpt_seq,
        },
        "trace": machine.trace,
        "snet": {
            "arrived": sorted(machine.snet._arrived),
            "episodes_completed": machine.snet.episodes_completed,
        },
        "bnet": {
            "queues": {cid: list(q) for cid, q in bnet._queues.items() if q},
            "broadcast_count": bnet.broadcast_count,
            "next_serial": bnet._next_serial,
        },
        "tnet": {
            "next_serial": tnet._next_serial,
            "injected_count": tnet.injected_count,
            "delivered_count": tnet.delivered_count,
            # Empty at a resumable gate (pump drained everything); a
            # watchdog dump keeps the wedged frames for inspection.
            "channels": {flow: list(queue)
                         for flow, queue in tnet._channels.items()
                         if queue},
        },
        "faulty_tnet": faulty,
        "fault_rng": (machine.fault_rng.getstate()
                      if machine.fault_rng is not None else None),
        "transport": (machine.transport.state()
                      if machine.transport is not None else None),
        "barriers": {
            gid: {"generation": s.generation,
                  "arrived": sorted(s.arrived),
                  "members": s.members}
            for gid, s in machine._barriers.items()
        },
        "reductions": {
            gid: {"per_pe_generation": dict(s.per_pe_generation),
                  "slots": {g: dict(slot) for g, slot in s.slots.items()},
                  "results": dict(s.results),
                  "fetches": dict(s.fetches),
                  "members": s.members,
                  "ops": dict(s.ops)}
            for gid, s in machine._reductions.items()
        },
        "cells": [_cell_state(machine, pe) for pe in range(n)],
        "cell_states": cell_states,
        "ctx": ctx_states,
    }

    memories: dict[str, np.ndarray] = {}
    for pe in range(n):
        buf = machine.hw_cells[pe].memory._buf
        memories[f"lo{pe}"] = np.array(buf[: machine._heap_next[pe]],
                                       copy=True)
        hi = buf[machine._private_next[pe]:]
        if hi.size:
            memories[f"hi{pe}"] = np.array(hi, copy=True)

    return MachineSnapshot(header=header, state=state, memories=memories)


# ----------------------------------------------------------------------
# Save / load
# ----------------------------------------------------------------------

def save_snapshot(snapshot: MachineSnapshot,
                  directory: str | Path) -> Path:
    """Write a snapshot directory atomically; returns its path.

    The artifact is staged in a temp dir next to the target and renamed
    into place, so a kill mid-write leaves no half-snapshot a later
    resume could trip over.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    prefix = SNAPSHOT_PREFIX if snapshot.resumable else HANG_PREFIX
    final = directory / f"{prefix}{snapshot.seq:06d}"
    staging = Path(tempfile.mkdtemp(prefix=f".{final.name}.tmp",
                                    dir=directory))
    try:
        (staging / HEADER_NAME).write_text(
            json.dumps(snapshot.header, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")
        with open(staging / STATE_NAME, "wb") as fh:
            pickle.dump(snapshot.state, fh,
                        protocol=pickle.HIGHEST_PROTOCOL)
        np.savez(staging / MEMORY_NAME, **snapshot.memories)
        if final.exists():
            shutil.rmtree(final)
        os.replace(staging, final)
    except BaseException:
        shutil.rmtree(staging, ignore_errors=True)
        raise
    return final


def latest_snapshot(directory: str | Path) -> Path | None:
    """The newest resumable snapshot in a checkpoint directory."""
    directory = Path(directory)
    if not directory.is_dir():
        return None
    candidates = sorted(
        p for p in directory.iterdir()
        if p.name.startswith(SNAPSHOT_PREFIX) and (p / HEADER_NAME).is_file()
    )
    return candidates[-1] if candidates else None


def load_snapshot(path: str | Path) -> MachineSnapshot:
    """Load one snapshot; ``path`` may also be a checkpoint directory,
    in which case the newest resumable snapshot is picked."""
    path = Path(path)
    if not (path / HEADER_NAME).is_file():
        newest = latest_snapshot(path)
        if newest is None:
            raise ConfigurationError(
                f"no checkpoint snapshot found at {path}")
        path = newest
    header = json.loads((path / HEADER_NAME).read_text(encoding="utf-8"))
    schema = header.get("schema")
    if schema not in KNOWN_CKPT_SCHEMAS:
        raise ConfigurationError(
            f"snapshot {path} declares schema {schema!r}; this build "
            f"understands {sorted(KNOWN_CKPT_SCHEMAS)} — refusing to "
            "guess at an incompatible layout")
    recomputed = config_hash(header.get("config", {}))
    if recomputed != header.get("config_hash"):
        raise ConfigurationError(
            f"snapshot {path} is corrupt: header config hash "
            f"{header.get('config_hash')!r} does not match its own "
            f"config document ({recomputed!r})")
    with open(path / STATE_NAME, "rb") as fh:
        state = pickle.load(fh)
    with np.load(path / MEMORY_NAME, allow_pickle=False) as data:
        memories = {key: np.array(data[key]) for key in data.files}
    return MachineSnapshot(header=header, state=state, memories=memories)


# ----------------------------------------------------------------------
# Restore
# ----------------------------------------------------------------------

def _config_from_document(document: dict[str, Any]):
    from repro.machine.config import MachineConfig

    plan_doc = document.get("fault_plan")
    plan = FaultPlan.from_dict(plan_doc) if plan_doc is not None else None
    return MachineConfig(
        num_cells=document["num_cells"],
        memory_per_cell=document["memory_per_cell"],
        clock_mhz=document["clock_mhz"],
        cache_bytes=document["cache_bytes"],
        trace_capacity=document["trace_capacity"],
        allow_nonstandard=document["allow_nonstandard"],
        sanitize=document["sanitize"],
        fault_plan=plan,
        scheduler=document["scheduler"],
    )


def restore_machine(snapshot: MachineSnapshot | str | Path) -> "Machine":
    """Build a machine whose next ``run()`` continues the snapshot.

    The caller runs the *same program with the same parameters* on the
    returned machine; the header's ``app`` block records which (see
    :func:`resume_workload` for the turnkey path).
    """
    from repro.machine.machine import (
        Machine,
        _BarrierState,
        _ReductionState,
    )

    if not isinstance(snapshot, MachineSnapshot):
        snapshot = load_snapshot(snapshot)
    header = snapshot.header
    if not snapshot.resumable:
        raise ConfigurationError(
            "this snapshot is a watchdog deadlock dump (resumable: "
            "false); it is for inspection, not restart")
    current = _code_version()
    if header.get("code_version") != current:
        raise ConfigurationError(
            f"snapshot was written by code version "
            f"{str(header.get('code_version'))[:12]}… but this tree is "
            f"{current[:12]}…; byte-exact replay is not guaranteed "
            "across code changes — re-run from scratch")
    document = header["config"]
    config = _config_from_document(document)
    machine = Machine(config, ack_policy=document["ack_policy"])
    if machine.obs is not None:
        raise ConfigurationError(
            "cannot restore under an active observer (snapshots carry "
            "no telemetry state); disable observe and retry")
    if machine.sanitize != document["sanitize"]:
        raise ConfigurationError(
            "ambient sanitizer setting contradicts the snapshot's "
            "resolved config; restore inside the same sanitize context")

    state = snapshot.state
    n = config.num_cells

    for pe in range(n):
        buf = machine.hw_cells[pe].memory._buf
        lo = snapshot.memories[f"lo{pe}"]
        buf[: lo.size] = lo
        hi = snapshot.memories.get(f"hi{pe}")
        if hi is not None and hi.size:
            buf[buf.size - hi.size:] = hi
    # _heap_next/_private_next stay at their fresh initial values: the
    # restored prologue re-runs its allocations and must land on the
    # captured addresses (the all-allocations-in-prologue contract).

    machine.progress = state["progress"]
    machine._resumes[:] = state["resumes"]
    machine.killed = set(state["killed"])
    machine._stalls = {pe: list(specs)
                       for pe, specs in state["stalls"].items()}
    machine._stall_remaining = dict(state["stall_remaining"])

    ckpt = state["ckpt"]
    machine._ckpt_counts[:] = ckpt["counts"]
    machine._ckpt_threshold = ckpt["threshold"]
    machine._ckpt_every = ckpt["every"]
    machine.ckpt_seq = ckpt["seq"]

    machine.trace = state["trace"]
    machine.snet._arrived = set(state["snet"]["arrived"])
    machine.snet.episodes_completed = state["snet"]["episodes_completed"]

    bnet = machine.bnet
    bnet.broadcast_count = state["bnet"]["broadcast_count"]
    bnet._next_serial = state["bnet"]["next_serial"]
    for cid, packets in state["bnet"]["queues"].items():
        bnet._queues[cid] = deque(packets)

    tnet = machine.tnet
    tnet._next_serial = state["tnet"]["next_serial"]
    tnet.injected_count = state["tnet"]["injected_count"]
    tnet.delivered_count = state["tnet"]["delivered_count"]
    for flow, packets in state["tnet"]["channels"].items():
        tnet._channels[tuple(flow)] = deque(packets)

    faulty = state["faulty_tnet"]
    if faulty is not None:
        vars(tnet.stats).update(faulty["stats"])
        tnet.killed = set(faulty["killed"])
        tnet.schedule = list(faulty["schedule"])
        tnet._delayed = [list(entry) for entry in faulty["delayed"]]
    if state["fault_rng"] is not None and machine.fault_rng is not None:
        machine.fault_rng.setstate(state["fault_rng"])
    if state["transport"] is not None and machine.transport is not None:
        machine.transport.load_state(state["transport"])

    machine._barriers = {}
    for gid, saved in state["barriers"].items():
        bstate = _BarrierState(saved["members"])
        bstate.generation = saved["generation"]
        bstate.arrived = set(saved["arrived"])
        machine._barriers[gid] = bstate
    machine._reductions = {}
    for gid, saved in state["reductions"].items():
        rstate = _ReductionState(saved["members"])
        rstate.per_pe_generation = dict(saved["per_pe_generation"])
        rstate.slots = {g: dict(slot)
                        for g, slot in saved["slots"].items()}
        rstate.results = dict(saved["results"])
        rstate.fetches = dict(saved["fetches"])
        rstate.ops = dict(saved["ops"])
        machine._reductions[gid] = rstate

    for pe in range(n):
        _restore_cell(machine, pe, state["cells"][pe])

    machine._restore_states = dict(state["cell_states"])
    machine._restore_ctx = dict(state["ctx"])
    machine._restore_killed = set(state["killed"])
    return machine


def resume_workload(path: str | Path):
    """Restore a snapshot and run its recorded workload to completion.

    Returns the finished :class:`repro.apps.base.AppRun`.  The snapshot
    header's ``app`` block names the workload and parameters; a snapshot
    captured outside a workload run (bare ``Machine.run``) cannot be
    resumed this way.
    """
    from repro.apps.workloads import workload
    from repro.ckpt import policy as ckpt_policy

    snapshot = load_snapshot(path)
    meta = snapshot.app
    if not meta:
        raise ConfigurationError(
            "snapshot records no application metadata; resume it by "
            "restoring the machine and re-running your program")
    wl = workload(meta["workload"])
    resume = ckpt_policy.CheckpointPolicy(resume_from=str(path))
    with ckpt_policy.applied(resume):
        return wl.run(num_cells=meta["num_cells"], **meta["params"])
