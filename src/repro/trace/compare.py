"""Trace comparison: diff two traces event-by-event.

Functional runs are deterministic (fixed seeds, deterministic
scheduling), so two runs of the same configuration must produce
*identical* traces — this module verifies that, and when traces differ
(e.g. after a code change), reports the first divergence precisely
instead of a bare assertion failure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.trace.buffer import TraceBuffer
from repro.trace.events import TraceEvent

#: Fields that define an event's identity for comparison (``seq`` is
#: included: global issue order is part of determinism).
COMPARE_FIELDS = (
    "kind", "pe", "seq", "partner", "size", "stride", "send_flag",
    "recv_flag", "is_ack", "flag", "target", "group", "group_size", "work",
)
#: ``msg_id`` carries a process-global packet serial, so it is excluded
#: by default: two machines in one process draw from one counter.
VOLATILE_FIELDS = ("msg_id",)


@dataclass(frozen=True)
class TraceDivergence:
    """The first point at which two traces disagree."""

    pe: int
    index: int
    field: str
    left: object
    right: object

    def describe(self) -> str:
        return (f"PE {self.pe}, event {self.index}: {self.field} differs "
                f"({self.left!r} vs {self.right!r})")


@dataclass(frozen=True)
class LengthMismatch:
    pe: int
    left_events: int
    right_events: int

    def describe(self) -> str:
        return (f"PE {self.pe}: {self.left_events} events vs "
                f"{self.right_events}")


def _event_key(ev: TraceEvent, fields) -> tuple:
    return tuple(getattr(ev, f) for f in fields)


def compare_traces(left: TraceBuffer, right: TraceBuffer, *,
                   fields=COMPARE_FIELDS):
    """Return None if the traces match, else the first divergence."""
    if left.num_pes != right.num_pes:
        return LengthMismatch(pe=-1, left_events=left.num_pes,
                              right_events=right.num_pes)
    for pe in range(left.num_pes):
        levs = left.events_for(pe)
        revs = right.events_for(pe)
        if len(levs) != len(revs):
            return LengthMismatch(pe=pe, left_events=len(levs),
                                  right_events=len(revs))
        for i, (le, re_) in enumerate(zip(levs, revs)):
            for field in fields:
                lv, rv = getattr(le, field), getattr(re_, field)
                if lv != rv:
                    return TraceDivergence(pe=pe, index=i, field=field,
                                           left=lv, right=rv)
    return None


def assert_traces_equal(left: TraceBuffer, right: TraceBuffer, *,
                        fields=COMPARE_FIELDS) -> None:
    """Raise ``AssertionError`` with a precise message on divergence."""
    divergence = compare_traces(left, right, fields=fields)
    if divergence is not None:
        raise AssertionError(f"traces differ: {divergence.describe()}")


def trace_fingerprint(trace: TraceBuffer, *, fields=COMPARE_FIELDS) -> int:
    """A cheap order-sensitive hash of a trace (for regression logs)."""
    acc = hash((trace.num_pes,))
    for pe in range(trace.num_pes):
        for ev in trace.events_for(pe):
            acc = hash((acc, _event_key(ev, fields)))
    return acc
