"""Opt-in sanitizer switch for byte-range trace annotation.

The checker (:mod:`repro.check`) needs to know *which bytes* every
PUT/GET touches on which cell; the plain trace records only message
sizes, because MLSim charges time by size and the paper's probes did the
same.  When the sanitizer is active, the probe layer additionally stamps
each communication event with the base address and stride footprint of
both the remote-side and the local-side access (see the ``raddr`` /
``laddr`` field family on :class:`~repro.trace.events.TraceEvent`).

Annotation is off by default so ordinary runs keep the paper's trace
vocabulary; it is enabled either per machine
(``MachineConfig(sanitize=True)``) or ambiently for a whole code region
with the :func:`enabled` context manager — the path ``repro check`` and
the benchmark runner's trace-cache stage use, so cached traces are
always checkable.
"""

from __future__ import annotations

from collections.abc import Iterator
from contextlib import contextmanager
from contextvars import ContextVar

_ACTIVE: ContextVar[bool] = ContextVar("repro_trace_sanitize", default=False)


def active() -> bool:
    """True when the ambient sanitizer switch is on."""
    return _ACTIVE.get()


@contextmanager
def enabled(on: bool = True) -> Iterator[None]:
    """Context manager turning byte-range annotation on (or off) for
    every :class:`~repro.machine.machine.Machine` built inside it."""
    token = _ACTIVE.set(bool(on))
    try:
        yield
    finally:
        _ACTIVE.reset(token)
