"""Trace recording (probe events), bounded buffering, serialization, and
Table 3 statistics."""

from repro.trace.buffer import DEFAULT_CAPACITY, TraceBuffer
from repro.trace.compare import (
    assert_traces_equal,
    compare_traces,
    trace_fingerprint,
)
from repro.trace.events import (
    MESSAGE_KINDS,
    EventKind,
    GroupTable,
    TraceEvent,
)
from repro.trace.io import load_trace, save_trace
from repro.trace.stats import (
    TABLE3_COLUMNS,
    AppStatistics,
    collect_statistics,
    format_table3_row,
)

__all__ = [
    "DEFAULT_CAPACITY",
    "TraceBuffer",
    "assert_traces_equal",
    "compare_traces",
    "trace_fingerprint",
    "MESSAGE_KINDS",
    "EventKind",
    "GroupTable",
    "TraceEvent",
    "load_trace",
    "save_trace",
    "TABLE3_COLUMNS",
    "AppStatistics",
    "collect_statistics",
    "format_table3_row",
]
