"""Structure-of-arrays trace layout.

The trace-driven replay stage walks millions of :class:`TraceEvent`
objects; attribute access and per-event dataclass overhead dominate its
runtime.  This module decodes a trace **once** into flat per-field
column arrays (one numpy array per event field, events stored per-PE
contiguous), which the vectorized MLSim engine
(:mod:`repro.mlsim.engine_soa`) consumes: parameter-dependent costs are
computed with array operations over whole columns, and the remaining
scalar replay loop only reads plain Python lists.

The columns are cached on the source :class:`TraceBuffer` keyed on its
event count, so replaying one trace under the three parameter presets
decodes it only once.  :func:`repro.trace.io.load_trace_columns` builds
the same layout straight from a trace file without materializing
``TraceEvent`` objects at all.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.buffer import TraceBuffer
from repro.trace.events import EventKind

#: Integer event fields decoded into columns (timing-relevant only;
#: sanitizer byte ranges stay on the event objects).
INT_COLUMNS = (
    "kind", "partner", "size", "send_flag", "recv_flag", "msg_id",
    "flag", "target", "group",
)


@dataclass
class TraceColumns:
    """One trace as flat per-field arrays, events per-PE contiguous.

    ``starts[pe] : starts[pe + 1]`` is PE ``pe``'s slice of every
    column, in that PE's program order.  ``group_size`` is the
    *effective* group size (the event's own ``group_size`` when set,
    else the group table's member count), which is what the timing
    engine consumes.
    """

    num_pes: int
    starts: np.ndarray            # int64, length num_pes + 1
    kind: np.ndarray              # int16
    partner: np.ndarray           # int64
    size: np.ndarray              # int64
    send_flag: np.ndarray         # int64
    recv_flag: np.ndarray         # int64
    msg_id: np.ndarray            # int64
    flag: np.ndarray              # int64
    target: np.ndarray            # int64
    group: np.ndarray             # int64
    group_size: np.ndarray        # int64 (effective)
    work: np.ndarray              # float64
    group_sizes: tuple[int, ...]  # group id -> member count

    @property
    def total_events(self) -> int:
        return int(self.starts[-1])


def columns_from_buffer(trace: TraceBuffer) -> TraceColumns:
    """Decode ``trace`` into columns, reusing a cached decode when the
    buffer has not changed since (same event count)."""
    assert trace.groups is not None
    cached = getattr(trace, "_soa_columns", None)
    if cached is not None and cached.total_events == trace.total_events:
        return cached

    n = trace.num_pes
    counts = [len(trace.events_for(pe)) for pe in range(n)]
    starts = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=starts[1:])
    total = int(starts[-1])

    kind = np.empty(total, dtype=np.int16)
    ints = {name: np.empty(total, dtype=np.int64)
            for name in INT_COLUMNS if name != "kind"}
    group_size = np.empty(total, dtype=np.int64)
    work = np.empty(total, dtype=np.float64)

    sizes = tuple(len(trace.groups.members(g))
                  for g in range(len(trace.groups)))
    lo = 0
    for pe in range(n):
        events = trace.events_for(pe)
        hi = lo + len(events)
        kind[lo:hi] = [ev.kind for ev in events]
        ints["partner"][lo:hi] = [ev.partner for ev in events]
        ints["size"][lo:hi] = [ev.size for ev in events]
        ints["send_flag"][lo:hi] = [ev.send_flag for ev in events]
        ints["recv_flag"][lo:hi] = [ev.recv_flag for ev in events]
        ints["msg_id"][lo:hi] = [ev.msg_id for ev in events]
        ints["flag"][lo:hi] = [ev.flag for ev in events]
        ints["target"][lo:hi] = [ev.target for ev in events]
        ints["group"][lo:hi] = [ev.group for ev in events]
        group_size[lo:hi] = [ev.group_size or sizes[ev.group]
                             for ev in events]
        work[lo:hi] = [ev.work for ev in events]
        lo = hi

    columns = TraceColumns(
        num_pes=n, starts=starts, kind=kind, work=work,
        group_size=group_size, group_sizes=sizes, **ints)
    trace._soa_columns = columns  # type: ignore[attr-defined]
    return columns


def coalesce_columns(columns: TraceColumns) -> TraceColumns:
    """Merge adjacent COMPUTE (and adjacent RTSYS) events per PE.

    The column-level twin of :meth:`TraceBuffer.coalesce_compute`, for
    columns decoded straight from a trace file.  Work sums accumulate
    left to right, exactly as the buffer-level merge does.
    """
    kind = columns.kind
    n = columns.num_pes
    total = len(kind)
    if total == 0:
        return columns
    compute = (kind == int(EventKind.COMPUTE)) | (kind == int(EventKind.RTSYS))
    # An event merges into its predecessor when both are the same
    # COMPUTE/RTSYS kind and belong to the same PE.
    same_prev = np.zeros(total, dtype=bool)
    same_prev[1:] = compute[1:] & (kind[1:] == kind[:-1])
    same_prev[columns.starts[1:-1]] = False
    if not same_prev.any():
        return columns
    keep = ~same_prev
    # Each merged event folds its work into the nearest kept event
    # before it, accumulating left to right — the same float addition
    # order as the buffer-level merge.
    target = np.maximum.accumulate(
        np.where(keep, np.arange(total), -1)).tolist()
    wl = columns.work.tolist()
    for i in np.nonzero(same_prev)[0].tolist():
        wl[target[i]] += wl[i]
    work = np.asarray(wl)
    kept = np.nonzero(keep)[0]
    per_pe_counts = np.diff(columns.starts)
    removed_per_pe = np.zeros(n, dtype=np.int64)
    pe_of = np.repeat(np.arange(n), per_pe_counts)
    np.add.at(removed_per_pe, pe_of[same_prev], 1)
    starts = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(per_pe_counts - removed_per_pe, out=starts[1:])
    return TraceColumns(
        num_pes=n, starts=starts,
        kind=kind[kept],
        partner=columns.partner[kept],
        size=columns.size[kept],
        send_flag=columns.send_flag[kept],
        recv_flag=columns.recv_flag[kept],
        msg_id=columns.msg_id[kept],
        flag=columns.flag[kept],
        target=columns.target[kept],
        group=columns.group[kept],
        group_size=columns.group_size[kept],
        work=work[kept],
        group_sizes=columns.group_sizes,
    )
