"""Trace serialization.

Traces are written as JSON lines: one header object (machine size, groups)
followed by one object per event in global order.  The format exists so a
long functional run can be recorded once and replayed through MLSim many
times with different parameter files — the same decoupling the paper's
methodology relied on.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO

from repro.core.errors import SimulationError
from repro.trace.buffer import TraceBuffer
from repro.trace.events import EventKind, GroupTable, TraceEvent

_FIELDS = (
    "kind", "pe", "seq", "partner", "size", "stride", "send_flag",
    "recv_flag", "is_ack", "msg_id", "flag", "target", "group",
    "group_size", "work",
)

# Sanitizer annotations (repro.check): written only when present, so
# unsanitized traces keep the original line format and older readers
# that enumerate keys see nothing new.
_RANGE_FIELDS = (
    "raddr", "rchunk", "rcount", "rstep",
    "laddr", "lchunk", "lcount", "lstep",
)


def _event_to_dict(ev: TraceEvent) -> dict:
    out: dict[str, object] = {}
    for name in _FIELDS:
        value = getattr(ev, name)
        if name == "kind":
            value = int(value)
        out[name] = value
    if ev.is_annotated():
        for name in _RANGE_FIELDS:
            out[name] = getattr(ev, name)
    return out


def _event_from_dict(obj: dict) -> TraceEvent:
    kwargs = dict(obj)
    kwargs["kind"] = EventKind(kwargs["kind"])
    return TraceEvent(**kwargs)


def save_trace(trace: TraceBuffer, target: str | Path | IO[str]) -> None:
    """Write a trace as JSON lines."""
    assert trace.groups is not None
    header = {
        "format": "ap1000-trace-v1",
        "num_pes": trace.num_pes,
        "groups": {str(gid): list(trace.groups.members(gid))
                   for gid in range(len(trace.groups))},
    }
    if trace.phases:
        # Phase labels are optional so unannotated traces keep the
        # original header shape.
        header["phases"] = list(trace.phases)

    def _write(fh: IO[str]) -> None:
        fh.write(json.dumps(header) + "\n")
        for ev in trace.all_events():
            fh.write(json.dumps(_event_to_dict(ev)) + "\n")

    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as fh:
            _write(fh)
    else:
        _write(target)


def load_trace(source: str | Path | IO[str]) -> TraceBuffer:
    """Read a trace written by :func:`save_trace`."""

    def _read(fh: IO[str]) -> TraceBuffer:
        header_line = fh.readline()
        if not header_line:
            raise SimulationError("empty trace file")
        header = json.loads(header_line)
        if header.get("format") != "ap1000-trace-v1":
            raise SimulationError(
                f"unrecognized trace format {header.get('format')!r}")
        num_pes = header["num_pes"]
        groups = GroupTable(tuple(range(num_pes)))
        for gid_str, members in sorted(
                header["groups"].items(), key=lambda kv: int(kv[0])):
            if int(gid_str) == 0:
                continue
            groups.intern(tuple(members))
        trace = TraceBuffer(num_pes=num_pes, capacity=1 << 62, groups=groups)
        for label in header.get("phases", []):
            trace.phase_id(label)
        for line in fh:
            line = line.strip()
            if not line:
                continue
            ev = _event_from_dict(json.loads(line))
            seq = ev.seq
            trace.record(ev)
            ev.seq = seq  # preserve the original global order
        return trace

    if isinstance(source, (str, Path)):
        with open(source, encoding="utf-8") as fh:
            return _read(fh)
    return _read(source)
