"""Trace serialization.

Three on-disk formats share one loader:

* **v1** — JSON lines: one header object (machine size, groups) followed
  by one object per event in global order.  Human-greppable, kept for
  back-compat and for small diagnostic dumps.
* **v2** — one columnar JSON object: the same header fields plus per-PE
  event ``counts`` and a ``columns`` table (one list per event field,
  events stored per-PE contiguous).  This is the cache format written by
  the benchmark runner: :func:`load_trace_columns` turns it into the
  structure-of-arrays layout the vectorized MLSim engine consumes
  without materializing a single :class:`TraceEvent`, so a trace is
  decoded once per application instead of once per (app, preset) cell.
* **stream** — v1-style event lines written *incrementally* while the
  run executes (:class:`StreamTraceWriter`): a minimal header, chunked
  line flushes at record boundaries, interleaved phase meta lines, and
  a v2-compatible footer (groups, phases, per-PE counts) appended at
  close.  The file is readable mid-run — ``repro top --follow`` tails
  it live — and loads like any other trace once the footer lands.

The formats exist so a long functional run can be recorded once and
replayed through MLSim many times with different parameter files — the
same decoupling the paper's methodology relied on.  ``load_trace`` and
``load_trace_columns`` sniff the format from the first line, so readers
never need to know which writer produced a file.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import IO

import numpy as np

from repro.core.errors import SimulationError
from repro.trace.buffer import TraceBuffer
from repro.trace.events import EventKind, GroupTable, TraceEvent
from repro.trace.soa import (
    INT_COLUMNS,
    TraceColumns,
    coalesce_columns,
    columns_from_buffer,
)

FORMAT_V1 = "ap1000-trace-v1"
FORMAT_V2 = "ap1000-trace-v2"
FORMAT_STREAM = "ap1000-trace-stream-v1"

_FIELDS = (
    "kind", "pe", "seq", "partner", "size", "stride", "send_flag",
    "recv_flag", "is_ack", "msg_id", "flag", "target", "group",
    "group_size", "work",
)

# Sanitizer annotations (repro.check): written only when present, so
# unsanitized traces keep the original line format and older readers
# that enumerate keys see nothing new.
_RANGE_FIELDS = (
    "raddr", "rchunk", "rcount", "rstep",
    "laddr", "lchunk", "lcount", "lstep",
)


def _event_to_dict(ev: TraceEvent) -> dict:
    out: dict[str, object] = {}
    for name in _FIELDS:
        value = getattr(ev, name)
        if name == "kind":
            value = int(value)
        out[name] = value
    if ev.is_annotated():
        for name in _RANGE_FIELDS:
            out[name] = getattr(ev, name)
    return out


def _event_from_dict(obj: dict) -> TraceEvent:
    kwargs = dict(obj)
    kwargs["kind"] = EventKind(kwargs["kind"])
    return TraceEvent(**kwargs)


def save_trace(trace: TraceBuffer, target: str | Path | IO[str]) -> None:
    """Write a trace as JSON lines (format v1)."""
    assert trace.groups is not None
    header = {
        "format": FORMAT_V1,
        "num_pes": trace.num_pes,
        "groups": {str(gid): list(trace.groups.members(gid))
                   for gid in range(len(trace.groups))},
    }
    if trace.phases:
        # Phase labels are optional so unannotated traces keep the
        # original header shape.
        header["phases"] = list(trace.phases)

    def _write(fh: IO[str]) -> None:
        fh.write(json.dumps(header) + "\n")
        for ev in trace.all_events():
            fh.write(json.dumps(_event_to_dict(ev)) + "\n")

    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as fh:
            _write(fh)
    else:
        _write(target)


def save_trace_v2(trace: TraceBuffer, target: str | Path | IO[str]) -> None:
    """Write a trace as one columnar JSON object (format v2).

    Events are stored per-PE contiguous (each PE's program order), with
    the machine-global ``seq`` column preserving the total order v1
    lines carried implicitly.  Groups are written as a list in group-id
    order and phases in phase-id order, so the tables round-trip with
    deterministic interning no matter which process wrote the file.
    Sanitizer byte ranges are emitted as full-length columns only when
    at least one event carries an annotation.
    """
    assert trace.groups is not None
    n = trace.num_pes
    ordered = [ev for pe in range(n) for ev in trace.events_for(pe)]
    columns: dict[str, list] = {}
    for name in _FIELDS:
        if name == "kind":
            columns[name] = [int(ev.kind) for ev in ordered]
        else:
            columns[name] = [getattr(ev, name) for ev in ordered]
    doc: dict[str, object] = {
        "format": FORMAT_V2,
        "num_pes": n,
        "groups": [list(trace.groups.members(gid))
                   for gid in range(len(trace.groups))],
        "phases": list(trace.phases),
        "counts": [len(trace.events_for(pe)) for pe in range(n)],
        "columns": columns,
    }
    if any(ev.is_annotated() for ev in ordered):
        doc["ranges"] = {
            name: [getattr(ev, name) for ev in ordered]
            for name in _RANGE_FIELDS
        }
    line = json.dumps(doc, separators=(",", ":")) + "\n"
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as fh:
            fh.write(line)
    else:
        target.write(line)


class StreamTraceWriter:
    """Incremental, bounded-memory trace writer (the stream format).

    Registered as the ambient sink via
    :func:`repro.trace.buffer.streaming_to`; the first
    :class:`TraceBuffer` created inside the context binds to it and
    every recorded event is appended to the file as it happens, in
    chunks of ``flush_events`` complete lines (so a concurrent reader
    never sees a torn record from a live writer).  Memory held is one
    pending chunk plus per-PE counters — independent of trace length.

    ``close`` appends the v2-compatible footer (groups, phases, per-PE
    counts, total) that lets :func:`load_trace` rebuild the exact
    buffer; a file without a footer (run still going, or killed) is
    still tailable by ``repro top --follow`` and loadable best-effort.
    """

    def __init__(self, target: str | Path, *,
                 flush_events: int = 1024) -> None:
        self.path = Path(target)
        self.flush_events = max(1, flush_events)
        self._fh: IO[str] | None = None
        self._buffer: TraceBuffer | None = None
        self._pending: list[str] = []
        self._counts: list[int] = []
        self._total = 0
        self._closed = False

    @property
    def bound(self) -> bool:
        return self._buffer is not None

    @property
    def total_events(self) -> int:
        return self._total

    def bind(self, buffer: TraceBuffer) -> bool:
        """Attach to the first buffer created in the streaming context;
        refuses (returns False) once bound or closed."""
        if self._buffer is not None or self._closed:
            return False
        self._buffer = buffer
        self._fh = open(self.path, "w", encoding="utf-8")
        header = {"format": FORMAT_STREAM, "num_pes": buffer.num_pes}
        self._fh.write(json.dumps(header) + "\n")
        self._fh.flush()
        self._counts = [0] * buffer.num_pes
        return True

    def emit(self, event: TraceEvent) -> None:
        self._pending.append(json.dumps(_event_to_dict(event)))
        self._counts[event.pe] += 1
        self._total += 1
        if len(self._pending) >= self.flush_events:
            self.flush()

    def phase(self, label: str, pid: int) -> None:
        self._pending.append(
            json.dumps({"meta": "phase", "label": label, "id": pid}))
        if len(self._pending) >= self.flush_events:
            self.flush()

    def flush(self) -> None:
        """Push pending complete lines to disk."""
        if self._fh is not None and self._pending:
            self._fh.write("\n".join(self._pending) + "\n")
            self._pending.clear()
            self._fh.flush()

    def close(self) -> None:
        """Flush, append the footer, and release the file."""
        if self._closed:
            return
        self._closed = True
        if self._fh is None:
            return
        self.flush()
        buffer = self._buffer
        assert buffer is not None and buffer.groups is not None
        footer = {
            "footer": FORMAT_STREAM,
            "groups": [list(buffer.groups.members(gid))
                       for gid in range(len(buffer.groups))],
            "phases": list(buffer.phases),
            "counts": self._counts,
            "total_events": self._total,
        }
        self._fh.write(json.dumps(footer) + "\n")
        self._fh.close()
        self._fh = None

    def __enter__(self) -> StreamTraceWriter:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def ensure_intact(path: str | Path) -> None:
    """Refuse a torn trace file before parsing it.

    A process killed mid-``write`` leaves an empty file or a partial
    last line; both read as damage, not as a trace.  Raises
    :class:`SimulationError` (a :class:`ReproError`, so the CLI prints
    one clean message) — the bench cache uses the same check to decide
    what to quarantine.
    """
    p = Path(path)
    try:
        if p.stat().st_size == 0:
            raise SimulationError(f"trace file {p} is empty")
        with p.open("rb") as fh:
            fh.seek(-1, os.SEEK_END)
            if fh.read(1) != b"\n":
                raise SimulationError(
                    f"trace file {p} is truncated (missing trailing "
                    "newline; was the writer killed mid-record?)")
    except OSError as exc:
        raise SimulationError(f"cannot read trace file {p}: {exc}"
                              ) from exc


def _buffer_from_stream(header: dict, fh: IO[str],
                        source: str = "<stream>") -> TraceBuffer:
    """Rebuild a TraceBuffer from a stream-format file.

    A footer, when present, restores the group table exactly; a
    footer-less file (live or killed writer) loads best-effort with
    only the implicit all-cells group.
    """
    num_pes = header["num_pes"]
    trace = TraceBuffer(num_pes=num_pes, capacity=1 << 62,
                        attach_sink=False)
    assert trace.groups is not None
    footer: dict | None = None
    for lineno, line in enumerate(fh, start=2):
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            raise SimulationError(
                f"{source}:{lineno}: corrupt trace line: {exc.msg}"
            ) from exc
        if "footer" in obj:
            footer = obj
            break
        if obj.get("meta") == "phase":
            pid = trace.phase_id(obj["label"])
            if pid != obj["id"]:
                raise SimulationError(
                    f"{source}:{lineno}: phase id mismatch "
                    f"({pid} != {obj['id']})")
            continue
        ev = _event_from_dict(obj)
        seq = ev.seq
        trace.record(ev)
        ev.seq = seq  # preserve the original global order
    if footer is not None:
        for members in footer.get("groups", [])[1:]:
            trace.groups.intern(tuple(members))
        total = footer.get("total_events")
        if total is not None and total != trace.total_events:
            raise SimulationError(
                f"{source}: footer promises {total} events but the "
                f"stream holds {trace.total_events}")
    return trace


def _buffer_from_v1(header: dict, fh: IO[str]) -> TraceBuffer:
    """Rebuild a TraceBuffer from a v1 stream positioned after the
    header line."""
    num_pes = header["num_pes"]
    groups = GroupTable(tuple(range(num_pes)))
    for gid_str, members in sorted(
            header["groups"].items(), key=lambda kv: int(kv[0])):
        if int(gid_str) == 0:
            continue
        groups.intern(tuple(members))
    trace = TraceBuffer(num_pes=num_pes, capacity=1 << 62, groups=groups,
                        attach_sink=False)
    for label in header.get("phases", []):
        trace.phase_id(label)
    for lineno, line in enumerate(fh, start=2):
        line = line.strip()
        if not line:
            continue
        try:
            ev = _event_from_dict(json.loads(line))
        except (json.JSONDecodeError, KeyError, ValueError) as exc:
            raise SimulationError(
                f"corrupt trace line {lineno}: {exc}") from exc
        seq = ev.seq
        trace.record(ev)
        ev.seq = seq  # preserve the original global order
    return trace


def _buffer_from_v2(doc: dict) -> TraceBuffer:
    """Rebuild a full TraceBuffer (event objects included) from a v2
    columnar document."""
    num_pes = doc["num_pes"]
    groups = GroupTable(tuple(range(num_pes)))
    for members in doc["groups"][1:]:  # gid 0 is always "all cells"
        groups.intern(tuple(members))
    trace = TraceBuffer(num_pes=num_pes, capacity=1 << 62, groups=groups,
                        attach_sink=False)
    for label in doc.get("phases", []):
        trace.phase_id(label)
    cols = doc["columns"]
    ranges = doc.get("ranges")
    names = [name for name in _FIELDS if name != "kind"]
    kinds = cols["kind"]
    idx = 0
    for count in doc["counts"]:
        for _ in range(count):
            kwargs = {name: cols[name][idx] for name in names}
            kwargs["kind"] = EventKind(kinds[idx])
            if ranges is not None:
                for name in _RANGE_FIELDS:
                    kwargs[name] = ranges[name][idx]
            ev = TraceEvent(**kwargs)
            seq = ev.seq
            trace.record(ev)
            ev.seq = seq  # preserve the original global order
            idx += 1
    return trace


def _columns_from_v2(doc: dict) -> TraceColumns:
    """Decode a v2 document straight into the structure-of-arrays
    layout, skipping TraceEvent objects entirely."""
    n = doc["num_pes"]
    cols = doc["columns"]
    starts = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.asarray(doc["counts"], dtype=np.int64), out=starts[1:])
    kind = np.asarray(cols["kind"], dtype=np.int16)
    ints = {name: np.asarray(cols[name], dtype=np.int64)
            for name in INT_COLUMNS if name != "kind"}
    sizes = tuple(len(members) for members in doc["groups"])
    explicit = np.asarray(cols["group_size"], dtype=np.int64)
    table = np.asarray(sizes, dtype=np.int64)
    group_size = np.where(explicit > 0, explicit, table[ints["group"]])
    work = np.asarray(cols["work"], dtype=np.float64)
    return TraceColumns(
        num_pes=n, starts=starts, kind=kind, work=work,
        group_size=group_size, group_sizes=sizes, **ints)


#: Column order of the npz sidecar (everything TraceColumns carries).
_NPZ_ARRAYS = (
    "starts", "kind", "partner", "size", "send_flag", "recv_flag",
    "msg_id", "flag", "target", "group", "group_size", "work",
    "group_sizes",
)


def save_columns_npz(trace: TraceBuffer, target: str | Path) -> None:
    """Write the trace's replay columns as a binary numpy archive.

    This is a decode *accelerator*, not a trace format: it carries only
    the timing-relevant columns (no seq, no sanitizer ranges), with the
    effective group size already resolved, so the replay stage can map
    it straight into :class:`TraceColumns` without touching JSON.  The
    v2 JSON file stays the source of truth beside it.
    """
    columns = columns_from_buffer(trace)
    arrays = {name: getattr(columns, name) for name in _NPZ_ARRAYS
              if name != "group_sizes"}
    arrays["group_sizes"] = np.asarray(columns.group_sizes, dtype=np.int64)
    np.savez(target, **arrays)


def load_columns_npz(source: str | Path, *,
                     coalesce: bool = True) -> TraceColumns:
    """Read columns written by :func:`save_columns_npz`."""
    with np.load(source) as data:
        arrays = {name: data[name] for name in _NPZ_ARRAYS}
    group_sizes = tuple(int(s) for s in arrays.pop("group_sizes"))
    starts = arrays.pop("starts")
    columns = TraceColumns(num_pes=len(starts) - 1, starts=starts,
                           group_sizes=group_sizes, **arrays)
    return coalesce_columns(columns) if coalesce else columns


def _sniff_header(fh: IO[str], source: str = "<trace>") -> dict:
    header_line = fh.readline()
    if not header_line:
        raise SimulationError(f"trace file {source} is empty")
    try:
        header = json.loads(header_line)
    except json.JSONDecodeError as exc:
        raise SimulationError(
            f"{source} is not a trace file (corrupt header: {exc.msg})"
        ) from exc
    if not isinstance(header, dict) or header.get("format") not in (
            FORMAT_V1, FORMAT_V2, FORMAT_STREAM):
        fmt = header.get("format") if isinstance(header, dict) else None
        raise SimulationError(f"unrecognized trace format {fmt!r}")
    return header


def load_trace(source: str | Path | IO[str]) -> TraceBuffer:
    """Read a trace written by :func:`save_trace`,
    :func:`save_trace_v2`, or :class:`StreamTraceWriter` (the format is
    sniffed from the first line).  File paths are integrity-checked
    first, so a torn file raises a clean :class:`SimulationError`
    instead of a parser traceback."""

    def _read(fh: IO[str], name: str) -> TraceBuffer:
        header = _sniff_header(fh, name)
        if header["format"] == FORMAT_V2:
            return _buffer_from_v2(header)
        if header["format"] == FORMAT_STREAM:
            return _buffer_from_stream(header, fh, name)
        return _buffer_from_v1(header, fh)

    if isinstance(source, (str, Path)):
        ensure_intact(source)
        with open(source, encoding="utf-8") as fh:
            return _read(fh, str(source))
    return _read(source, "<stream>")


def load_trace_columns(
    source: str | Path | IO[str], *, coalesce: bool = True,
) -> TraceColumns:
    """Read a trace file straight into :class:`TraceColumns`.

    On a v2 file this is the replay fast path: each column deserializes
    as one JSON list and lands in one numpy array, with the effective
    group size resolved vectorially from the group table.  v1 files fall
    back through :func:`load_trace` + :func:`columns_from_buffer`.  With
    ``coalesce`` (the default) adjacent COMPUTE/RTSYS events are merged
    exactly as :meth:`TraceBuffer.coalesce_compute` would, so replaying
    from columns matches replaying from a coalesced buffer bit for bit.
    """

    def _read(fh: IO[str], name: str) -> TraceColumns:
        header = _sniff_header(fh, name)
        if header["format"] == FORMAT_V2:
            columns = _columns_from_v2(header)
        elif header["format"] == FORMAT_STREAM:
            columns = columns_from_buffer(
                _buffer_from_stream(header, fh, name))
        else:
            columns = columns_from_buffer(_buffer_from_v1(header, fh))
        return coalesce_columns(columns) if coalesce else columns

    if isinstance(source, (str, Path)):
        ensure_intact(source)
        with open(source, encoding="utf-8") as fh:
            return _read(fh, str(source))
    return _read(source, "<stream>")
