"""Trace event vocabulary.

The paper collected execution traces "from probes inserted at various
points in the operating and run-time systems ... at entries and exits of
the communication and synchronization library and interrupt service
routine", then replayed them through MLSim.  Our functional machine plays
the role of the real AP1000: while an application executes, a probe layer
records one :class:`TraceEvent` per communication/synchronization call and
per computation interval.  MLSim consumes exactly these events.

Event kinds map one-to-one onto the columns of Table 3: SEND, Gop, V Gop,
Sync, PUT, PUTS (stride PUT), GET, GETS (stride GET) — plus COMPUTE /
RTSYS intervals and the waits that turn into idle time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class EventKind(enum.IntEnum):
    COMPUTE = 0        # user computation interval (work µs on base SPARC)
    RTSYS = 1          # VPP Fortran run-time system work (address calc etc.)
    PUT = 2            # one-sided write (stride=True -> "PUTS" in Table 3)
    GET = 3            # one-sided read  (stride=True -> "GETS")
    SEND = 4           # two-sided blocking send
    RECV = 5           # two-sided receive (ring-buffer search + copy)
    FLAG_WAIT = 6      # spin on a flag until it reaches a target count
    BARRIER = 7        # barrier synchronization ("Sync")
    GOP = 8            # global reduction, scalar ("Gop")
    VGOP = 9           # global reduction, vector ("V Gop")
    REMOTE_LOAD = 10   # blocking shared-memory load
    REMOTE_STORE = 11  # non-blocking shared-memory store
    CREG_STORE = 12    # communication-register store (possibly remote)
    CREG_LOAD = 13     # communication-register load (blocks on p-bit)
    # --- robustness events (repro.faults; zero-cost in MLSim) ---------
    RETRY = 14         # link-layer retransmission of an unacked frame
    TIMEOUT = 15       # retransmission timer expired on a cell
    SPILL = 16         # an MSC+ command queue spilled words to DRAM
    # --- observability annotations (repro.obs; zero-cost in MLSim) ----
    PHASE = 17         # user phase label (flag = interned label id)


#: Kinds that correspond to a message leaving this PE.
MESSAGE_KINDS = frozenset({
    EventKind.PUT, EventKind.GET, EventKind.SEND,
    EventKind.REMOTE_LOAD, EventKind.REMOTE_STORE,
})


@dataclass(slots=True)
class TraceEvent:
    """One probe record.

    Only the fields relevant to ``kind`` are meaningful; the rest keep
    their defaults.  ``seq`` is a machine-global issue counter that gives
    MLSim one legal total order to break ties with.
    """

    kind: EventKind
    pe: int
    seq: int = 0
    # --- communication ---------------------------------------------------
    partner: int = -1        # destination / source PE
    size: int = 0            # payload bytes
    stride: bool = False     # stride transfer (PUTS / GETS)
    send_flag: int = 0       # global flag id updated at send completion
    recv_flag: int = 0       # global flag id updated at receive completion
    is_ack: bool = False     # GET-to-address-0 acknowledge idiom
    msg_id: int = 0          # SEND/RECV matching key (packet serial)
    # --- waits -----------------------------------------------------------
    flag: int = 0            # global flag id waited on
    target: int = 0          # flag count to reach
    # --- collectives -----------------------------------------------------
    group: int = 0           # group id (0 = all cells)
    group_size: int = 0
    # --- computation -----------------------------------------------------
    work: float = 0.0        # µs of work on the base (SPARC) processor
    # --- sanitizer byte ranges (repro.check; see trace/sanitize.py) ------
    # Recorded only when the sanitizer is active: the footprint of the
    # remote-side access (on ``partner``'s memory) and the local-side
    # access (on ``pe``'s memory).  A footprint is ``count`` chunks of
    # ``chunk`` bytes, chunk i starting at ``addr + i * step``; a
    # contiguous transfer is one chunk.  ``raddr``/``laddr`` of -1 mean
    # "no annotation on this side".
    raddr: int = -1
    rchunk: int = 0
    rcount: int = 0
    rstep: int = 0
    laddr: int = -1
    lchunk: int = 0
    lcount: int = 0
    lstep: int = 0

    def is_message(self) -> bool:
        return self.kind in MESSAGE_KINDS

    def is_annotated(self) -> bool:
        """True when the sanitizer stamped a byte range on this event."""
        return self.raddr >= 0 or self.laddr >= 0


@dataclass
class GroupTable:
    """Registry of synchronization groups (group id -> member PEs).

    Group 0 is always "all cells".  Parallelizing compilers create groups
    from index-partition directives; the table is recorded alongside the
    trace so MLSim can size barriers and reductions correctly.
    """

    all_cells: tuple[int, ...]
    _groups: dict[int, tuple[int, ...]] = field(default_factory=dict)
    _ids: dict[tuple[int, ...], int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        members = tuple(sorted(self.all_cells))
        self._groups[0] = members
        self._ids[members] = 0

    def intern(self, members: tuple[int, ...]) -> int:
        """Return the id of a group, registering it if new."""
        key = tuple(sorted(set(members)))
        if not key:
            raise ValueError("a synchronization group cannot be empty")
        gid = self._ids.get(key)
        if gid is None:
            gid = len(self._groups)
            self._groups[gid] = key
            self._ids[key] = gid
        return gid

    def members(self, gid: int) -> tuple[int, ...]:
        return self._groups[gid]

    def size(self, gid: int) -> int:
        return len(self._groups[gid])

    def __len__(self) -> int:
        return len(self._groups)
