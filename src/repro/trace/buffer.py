"""Bounded trace buffer.

The real AP1000 probes stored events "in a trace buffer along with time
and message information", and the buffer was finite — the paper could
only simulate the first 10 iterations of SP and TOMCATV "because of trace
buffer limitations", and could not simulate FT without stride transfers
at all because the trace overflowed.  We keep the same failure mode (it
is part of faithfully reproducing the methodology) but with a
configurable, much larger bound.
"""

from __future__ import annotations

import contextlib
from collections.abc import Iterator
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Protocol

from repro.core.errors import TraceBufferOverflowError
from repro.trace.events import EventKind, GroupTable, TraceEvent

#: Default machine-wide event capacity.
DEFAULT_CAPACITY = 4_000_000


class TraceSink(Protocol):
    """Consumer of live trace events (see
    :class:`repro.trace.io.StreamTraceWriter`).

    A sink binds to the *first* buffer created inside a
    :func:`streaming_to` context (``bind`` returns False to refuse) and
    then observes every recorded event and phase interning in order.
    """

    def bind(self, buffer: TraceBuffer) -> bool: ...

    def emit(self, event: TraceEvent) -> None: ...

    def phase(self, label: str, pid: int) -> None: ...


#: Ambient sink for incremental trace writing.  A ContextVar (not a
#: module global) so nested tools and tests compose; the pattern
#: mirrors ``repro.trace.sanitize.enabled`` / ``repro.obs.enabled``.
_active_sink: ContextVar[TraceSink | None] = ContextVar(
    "repro_trace_sink", default=None)


@contextlib.contextmanager
def streaming_to(sink: TraceSink) -> Iterator[TraceSink]:
    """Stream events of the next-created trace buffer into ``sink``."""
    token = _active_sink.set(sink)
    try:
        yield sink
    finally:
        _active_sink.reset(token)


@dataclass
class TraceBuffer:
    """Per-PE event lists with a machine-wide capacity bound."""

    num_pes: int
    capacity: int = DEFAULT_CAPACITY
    groups: GroupTable | None = None
    #: Whether to bind to the ambient streaming sink at creation.
    #: Loaders pass False so re-reading a trace never re-streams it.
    attach_sink: bool = True
    _events: list[list[TraceEvent]] = field(default_factory=list)
    _seq: int = 0
    total_events: int = 0
    _phase_labels: list[str] = field(default_factory=list)
    _phase_ids: dict[str, int] = field(default_factory=dict)
    _sink: TraceSink | None = field(default=None, repr=False,
                                    compare=False)

    def __post_init__(self) -> None:
        if not self._events:
            self._events = [[] for _ in range(self.num_pes)]
        if self.groups is None:
            self.groups = GroupTable(tuple(range(self.num_pes)))
        if self.attach_sink and self._sink is None:
            sink = _active_sink.get()
            if sink is not None and sink.bind(self):
                self._sink = sink

    def record(self, event: TraceEvent) -> TraceEvent:
        """Append an event, assigning its global sequence number."""
        if self.total_events >= self.capacity:
            raise TraceBufferOverflowError(
                f"trace buffer full at {self.capacity} events (the AP1000 "
                "probes hit the same limit; raise `capacity` or shrink the "
                "workload)"
            )
        event.seq = self._seq
        self._seq += 1
        self._events[event.pe].append(event)
        self.total_events += 1
        if self._sink is not None:
            self._sink.emit(event)
        return event

    def phase_id(self, label: str) -> int:
        """Intern a phase label and return its 1-based id.

        PHASE events carry the id in their ``flag`` field (0 means "no
        phase"), keeping the event record fixed-width.
        """
        pid = self._phase_ids.get(label)
        if pid is None:
            self._phase_labels.append(label)
            pid = len(self._phase_labels)
            self._phase_ids[label] = pid
            if self._sink is not None:
                self._sink.phase(label, pid)
        return pid

    def __getstate__(self) -> dict:
        # Checkpoints pickle the whole buffer; a file-backed sink cannot
        # survive that, so a resumed run records without streaming.
        state = self.__dict__.copy()
        state["_sink"] = None
        return state

    def phase_label(self, pid: int) -> str:
        """Resolve a phase id back to its label."""
        if 1 <= pid <= len(self._phase_labels):
            return self._phase_labels[pid - 1]
        return f"phase-{pid}"

    @property
    def phases(self) -> tuple[str, ...]:
        """All interned phase labels, in id order."""
        return tuple(self._phase_labels)

    def events_for(self, pe: int) -> list[TraceEvent]:
        return self._events[pe]

    def all_events(self) -> list[TraceEvent]:
        """Every event in global issue order."""
        merged = [ev for pe_events in self._events for ev in pe_events]
        merged.sort(key=lambda ev: ev.seq)
        return merged

    def count(self, kind: EventKind, pe: int | None = None) -> int:
        if pe is not None:
            return sum(1 for ev in self._events[pe] if ev.kind is kind)
        return sum(
            1 for pe_events in self._events for ev in pe_events
            if ev.kind is kind
        )

    def coalesce_compute(self) -> None:
        """Merge adjacent COMPUTE (and adjacent RTSYS) events per PE.

        Applications may charge work in many small slices; MLSim timing is
        unaffected by merging, and replay gets cheaper.
        """
        for pe in range(self.num_pes):
            merged: list[TraceEvent] = []
            for ev in self._events[pe]:
                if (merged
                        and ev.kind in (EventKind.COMPUTE, EventKind.RTSYS)
                        and merged[-1].kind is ev.kind):
                    merged[-1].work += ev.work
                else:
                    merged.append(ev)
            removed = len(self._events[pe]) - len(merged)
            self._events[pe] = merged
            self.total_events -= removed
