"""Application statistics in the shape of the paper's Table 3.

For each application, Table 3 reports per-PE averages of SEND, Gop, V Gop,
Sync, PUT, PUTS, GET, GETS, and the average PUT/GET message size in bytes
"without GET for acknowledge".  This module derives exactly those columns
from a trace.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.trace.buffer import TraceBuffer
from repro.trace.events import EventKind

TABLE3_COLUMNS = (
    "PE", "SEND", "Gop", "V Gop", "Sync",
    "PUT", "PUTS", "GET", "GETS", "Size of Msg.",
)


@dataclass(frozen=True)
class AppStatistics:
    """One row of Table 3."""

    num_pes: int
    send_per_pe: float
    gop_per_pe: float
    vgop_per_pe: float
    sync_per_pe: float
    put_per_pe: float
    puts_per_pe: float
    get_per_pe: float
    gets_per_pe: float
    avg_message_bytes: float
    # Robustness counters (zero on a perfect machine; populated when
    # repro.faults is active).  Machine-wide totals, not per-PE averages,
    # because faults are rare events, not per-cell workload.  Defaults
    # keep cached AppStatistics from before these fields loadable.
    retries: int = 0
    timeouts: int = 0
    spills: int = 0

    def as_row(self) -> tuple:
        return (
            self.num_pes, self.send_per_pe, self.gop_per_pe,
            self.vgop_per_pe, self.sync_per_pe, self.put_per_pe,
            self.puts_per_pe, self.get_per_pe, self.gets_per_pe,
            self.avg_message_bytes,
        )


def collect_statistics(trace: TraceBuffer) -> AppStatistics:
    """Compute the Table 3 row for a recorded trace."""
    n = trace.num_pes
    counts = {kind: 0 for kind in EventKind}
    puts_stride = gets_stride = 0
    msg_bytes = 0
    msg_count = 0
    for pe in range(n):
        for ev in trace.events_for(pe):
            counts[ev.kind] += 1
            if ev.kind is EventKind.PUT:
                if ev.stride:
                    puts_stride += 1
                msg_bytes += ev.size
                msg_count += 1
            elif ev.kind is EventKind.GET:
                if ev.is_ack:
                    # "without GET for acknowledge": excluded from both the
                    # GET count column and the message-size average.
                    counts[ev.kind] -= 1
                    continue
                if ev.stride:
                    gets_stride += 1
                msg_bytes += ev.size
                msg_count += 1

    def per_pe(value: int) -> float:
        return value / n

    return AppStatistics(
        num_pes=n,
        send_per_pe=per_pe(counts[EventKind.SEND]),
        gop_per_pe=per_pe(counts[EventKind.GOP]),
        vgop_per_pe=per_pe(counts[EventKind.VGOP]),
        sync_per_pe=per_pe(counts[EventKind.BARRIER]),
        put_per_pe=per_pe(counts[EventKind.PUT] - puts_stride),
        puts_per_pe=per_pe(puts_stride),
        get_per_pe=per_pe(counts[EventKind.GET] - gets_stride),
        gets_per_pe=per_pe(gets_stride),
        avg_message_bytes=(msg_bytes / msg_count) if msg_count else 0.0,
        retries=counts[EventKind.RETRY],
        timeouts=counts[EventKind.TIMEOUT],
        spills=counts[EventKind.SPILL],
    )


def format_table3_row(name: str, stats: AppStatistics) -> str:
    """Render one application's row in the paper's layout, extended
    with the machine-wide robustness totals (retry/timeout/spill)."""
    row = stats.as_row()
    cells = [f"{name:<10}", f"{row[0]:>4d}"]
    cells += [f"{v:>10.1f}" for v in row[1:]]
    cells += [f"{v:>7d}"
              for v in (stats.retries, stats.timeouts, stats.spills)]
    return "  ".join(cells)
