"""Command-line interface: run workloads, record/replay traces, print
parameter files, and reproduce the full evaluation.

Usage::

    python -m repro.cli run CG --cells 16 --trace cg.jsonl [--json]
    python -m repro.cli run CG --observe
    python -m repro.cli replay cg.jsonl --preset ap1000+ [--json]
    python -m repro.cli replay cg.jsonl --params my_model.params
    python -m repro.cli trace export --micro --format perfetto -o out.json
    python -m repro.cli trace export cg.jsonl --format chrome
    python -m repro.cli trace export cg.jsonl --chunk-events 5000 -o out.json
    python -m repro.cli top cg.jsonl [--json]
    python -m repro.cli top BENCH_20260101T000000Z.json
    python -m repro.cli run CG --stream cg.stream.jsonl
    python -m repro.cli top cg.stream.jsonl --follow
    python -m repro.cli ingest foreign.vef [--reader vef] [--json]
    python -m repro.cli params ap1000
    python -m repro.cli report [--paper-scale] [--apps EP MatMul ...]
    python -m repro.cli check --all [--json]
    python -m repro.cli check --buggy [--static]
    python -m repro.cli check --static [APP ...]
    python -m repro.cli check --conform [APP ...]
    python -m repro.cli run CG --checkpoint-dir ckpts --checkpoint-every 2
    python -m repro.cli run CG --resume-from ckpts
    python -m repro.cli chaos --recover --smoke
    python -m repro.cli bench run [--smoke] [--jobs 4] [--check]
    python -m repro.cli bench run --smoke --resume
    python -m repro.cli bench compare BENCH_x.json --baseline base.json
    python -m repro.cli list

The ``run``/``replay`` split mirrors the paper's methodology: traces are
recorded once on the (functional) machine, then replayed through MLSim
under as many parameter files as desired.  ``check`` runs the race
detector / synchronization sanitizer over recorded traces and the SPMD
lint over application source (see ``docs/checker.md``).  ``trace
export`` and ``top`` surface the observability layer (``repro.obs``,
see ``docs/observability.md``): Perfetto/Chrome timeline exports and an
ASCII utilization dashboard over a trace or bench artifact.  ``ingest``
translates foreign traces (VEF text, MPI JSON-lines; see
``docs/ingest.md``) into the native format, and ``run --stream`` / ``top
--follow`` stream a live run into a tailable dashboard.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import signal
import sys
from collections.abc import Iterator, Sequence
from pathlib import Path

from repro.analysis.report import run_experiments
from repro.apps.workloads import ORDER, WORKLOADS, workload
from repro.core.errors import (
    CheckpointInterrupt,
    ConfigurationError,
    ReproError,
)
from repro.mlsim.params import PRESETS, format_params, parse_params, preset
from repro.mlsim.simulator import simulate, simulate_models
from repro.trace.io import load_trace, save_trace
from repro.trace.stats import format_table3_row

#: Exit status of a run interrupted but resumable from a checkpoint or
#: journal (EX_TEMPFAIL: "try again later").
EXIT_RESUMABLE = 75
#: Exit status of a chaos sweep whose runs completed but diverged from
#: the golden digests (distinct from 1 = crashed case, 2 = usage/error).
EXIT_DIVERGED = 3


@contextlib.contextmanager
def _graceful_interrupt(enabled: bool) -> Iterator[None]:
    """Convert the first SIGINT/SIGTERM into a checkpoint request.

    The machine parks at its next safe point, saves one final snapshot,
    and the run exits with :data:`EXIT_RESUMABLE` and a resume command.
    A second signal falls through to the previous handlers (normally: a
    KeyboardInterrupt / process kill).
    """
    if not enabled:
        yield
        return
    from repro.ckpt import policy as ckpt_policy

    previous: dict[int, object] = {}

    def _handler(signum, frame):
        ckpt_policy.request_interrupt()
        for sig, old in previous.items():
            signal.signal(sig, old)
        print("interrupt: saving a checkpoint at the next safe point "
              "(signal again to kill immediately)", file=sys.stderr)

    try:
        for sig in (signal.SIGINT, signal.SIGTERM):
            previous[sig] = signal.signal(sig, _handler)
    except ValueError:  # not the main thread: run unguarded
        yield
        return
    try:
        yield
    finally:
        ckpt_policy.clear_interrupt()
        for sig, old in previous.items():
            with contextlib.suppress(ValueError, TypeError):
                signal.signal(sig, old)


@contextlib.contextmanager
def _shard_env(shards: int):
    """Select the sharded engine for machines built inside the block."""
    saved = {key: os.environ.get(key)
             for key in ("REPRO_MACHINE_SCHEDULER", "REPRO_MACHINE_SHARDS")}
    os.environ["REPRO_MACHINE_SCHEDULER"] = "sharded"
    os.environ["REPRO_MACHINE_SHARDS"] = str(shards)
    try:
        yield
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def _cmd_list(args: argparse.Namespace) -> int:
    print("workloads (section 5.2):")
    for name in ORDER:
        w = workload(name)
        print(f"  {name:10s} {w.language:12s} default {w.default_pes:3d} "
              f"cells, paper {w.paper_pes:3d} cells")
    print("\nparameter presets (Figure 6):", ", ".join(sorted(PRESETS)))
    return 0


def _print_json(doc: dict) -> None:
    print(json.dumps(doc, indent=2, sort_keys=True))


def _run_resume_command(args: argparse.Namespace, snapshot: str) -> str:
    """The exact command that resumes an interrupted ``repro run``."""
    parts = ["repro run", args.app]
    if args.cells is not None:
        parts.append(f"--cells {args.cells}")
    if args.paper_scale:
        parts.append("--paper-scale")
    if args.trace_capacity is not None:
        parts.append(f"--trace-capacity {args.trace_capacity}")
    if args.checkpoint_dir:
        parts.append(f"--checkpoint-dir {args.checkpoint_dir}")
    if args.checkpoint_every is not None:
        parts.append(f"--checkpoint-every {args.checkpoint_every}")
    parts.append(f"--resume-from {snapshot}")
    return " ".join(parts)


def _cmd_run(args: argparse.Namespace) -> int:
    from dataclasses import asdict

    from repro.bench.cache import jsonify
    from repro.ckpt import policy as ckpt_policy
    from repro.obs import observer as obs
    from repro.trace import sanitize

    w = workload(args.app)
    overrides = {}
    if args.trace_capacity is not None:
        overrides["trace_capacity"] = args.trace_capacity
    if (args.checkpoint_dir or args.checkpoint_every
            or args.resume_from):
        policy_ctx = ckpt_policy.applied(ckpt_policy.CheckpointPolicy(
            every=args.checkpoint_every,
            directory=args.checkpoint_dir,
            resume_from=args.resume_from,
        ))
    else:
        policy_ctx = contextlib.nullcontext()
    if args.shards is not None:
        shard_ctx = _shard_env(args.shards)
    else:
        shard_ctx = contextlib.nullcontext()
    stream_writer = None
    if args.stream:
        if args.shards is not None:
            raise ConfigurationError(
                "--stream tails the live trace buffer; the sharded "
                "engine records per-worker and merges at the end, so "
                "the combination would not stream anything live — "
                "drop one of --stream/--shards")
        from repro.trace.buffer import streaming_to
        from repro.trace.io import StreamTraceWriter

        stream_writer = StreamTraceWriter(args.stream)
        stream_ctx = streaming_to(stream_writer)
    else:
        stream_ctx = contextlib.nullcontext()
    try:
        with _graceful_interrupt(bool(args.checkpoint_dir)), policy_ctx, \
                sanitize.enabled(args.sanitize), obs.enabled(args.observe), \
                shard_ctx, stream_ctx:
            run = w.run(paper_scale=args.paper_scale,
                        num_cells=args.cells, **overrides)
    except CheckpointInterrupt as exc:
        print(f"{args.app}: interrupted; snapshot saved to "
              f"{exc.snapshot_path}")
        print("resume with: "
              + _run_resume_command(args, str(exc.snapshot_path)))
        return EXIT_RESUMABLE
    finally:
        # On success this lands the v2-compatible footer; on a crash or
        # checkpoint interrupt it flushes what was recorded so the file
        # stays tailable/loadable.
        if stream_writer is not None:
            stream_writer.close()
    # Statistics and the trace file must be taken before any replay:
    # replays coalesce (mutate) the trace buffer.
    statistics = run.statistics
    total_events = run.trace.total_events
    if args.trace:
        save_trace(run.trace, args.trace)
    speedups = None
    if not args.no_replay:
        cmp = simulate_models(run.trace)
        plus, fast = cmp.table2_row()
        speedups = {"ap1000+": plus, "ap1000-fast": fast}
    if args.json:
        _print_json({
            "schema": "repro-run-v1",
            "app": run.name,
            "cells": run.machine.config.num_cells,
            "verified": bool(run.verified),
            "checks": jsonify(run.checks),
            "total_events": total_events,
            "statistics": jsonify(asdict(statistics)),
            "speedups_vs_ap1000": speedups,
            "metrics": jsonify(obs.machine_metrics(run.machine)),
            "shard_report": jsonify(
                getattr(run.machine, "shard_report", None)),
            "trace_file": args.trace,
        })
        return 0 if run.verified else 1
    status = "VERIFIED" if run.verified else "FAILED"
    print(f"{run.name}: functional run {status} on "
          f"{run.machine.config.num_cells} cells, "
          f"{total_events} trace events")
    report = getattr(run.machine, "shard_report", None)
    if report is not None:
        busy = max(report["worker_busy_s"])
        print(f"  sharded over {report['shards']} workers "
              f"({report['partitioner']}): critical path "
              f"{report['critical_path_s']:.3f}s (slowest worker "
              f"{busy:.3f}s + replay {report['replay_s']:.3f}s)")
    for name, value in run.checks.items():
        print(f"  check {name}: {value}")
    print(format_table3_row(run.name, statistics))
    if args.trace:
        print(f"trace written to {args.trace}")
    if args.stream:
        print(f"stream trace written to {args.stream}")
    if speedups is not None:
        print(f"Table 2 speedups vs AP1000: AP1000+ "
              f"{speedups['ap1000+']:.2f}, "
              f"AP1000/SuperSPARC {speedups['ap1000-fast']:.2f}")
    return 0 if run.verified else 1


def _cmd_replay(args: argparse.Namespace) -> int:
    trace = load_trace(args.trace)
    if args.params:
        params = parse_params(args.params, name=args.params)
    else:
        params = preset(args.preset)
    if args.timeline:
        from repro.mlsim.engine import MLSimEngine
        from repro.mlsim.timeline import render_timeline
        trace.coalesce_compute()
        engine = MLSimEngine(trace, params, record_timeline=True,
                             collect_metrics=args.json)
        result = engine.run()
        if not args.json:
            print(render_timeline(engine.timeline))
    else:
        result = simulate(trace, params, collect_metrics=args.json)
    if args.json:
        _print_json({
            "schema": "repro-replay-v1",
            "trace_file": args.trace,
            "model": result.model_name,
            "elapsed_us": result.elapsed_us,
            "messages": result.messages,
            "bytes_on_wire": result.bytes_on_wire,
            "mean_execution_us": result.mean_execution,
            "mean_rtsys_us": result.mean_rtsys,
            "mean_overhead_us": result.mean_overhead,
            "mean_idle_us": result.mean_idle,
            "metrics": result.metrics,
        })
        return 0
    print(f"model {result.model_name}: elapsed {result.elapsed_us:.1f} us, "
          f"{result.messages} messages, "
          f"{result.bytes_on_wire} payload bytes")
    print(f"  mean execution {result.mean_execution:12.1f} us")
    print(f"  mean rtsys     {result.mean_rtsys:12.1f} us")
    print(f"  mean overhead  {result.mean_overhead:12.1f} us")
    print(f"  mean idle      {result.mean_idle:12.1f} us")
    return 0


def _source_trace(args: argparse.Namespace):
    """The trace named by a ``trace export``/``top`` invocation."""
    from repro.core.errors import ConfigurationError
    from repro.obs.micro import MICRO_CELLS, micro_trace

    if args.micro:
        return micro_trace(args.cells or MICRO_CELLS)
    if getattr(args, "app", None):
        run = workload(args.app).run(num_cells=args.cells)
        return run.trace
    if args.trace:
        return load_trace(args.trace)
    raise ConfigurationError(
        "no trace source: name a trace file, or pass --micro or --app")


def _chunk_path(output: Path, index: int) -> Path:
    """``out.json`` -> ``out.chunk000.json`` (chunked trace export)."""
    suffix = output.suffix or ".json"
    return output.with_name(f"{output.stem}.chunk{index:03d}{suffix}")


def _cmd_trace_export(args: argparse.Namespace) -> int:
    from repro.obs.export import export_trace, export_trace_chunked

    trace = _source_trace(args)
    params = (parse_params(args.params, name=args.params) if args.params
              else preset(args.preset))
    if args.chunk_events is not None:
        if not args.output:
            raise ConfigurationError(
                "--chunk-events writes one file per chunk; name the "
                "base path with -o/--output")
        out = Path(args.output)
        paths = []
        for index, text in enumerate(export_trace_chunked(
                trace, params, args.format,
                chunk_events=args.chunk_events)):
            path = _chunk_path(out, index)
            path.write_text(text, encoding="utf-8")
            paths.append(path)
        print(f"{args.format} export written to {len(paths)} chunk(s): "
              f"{paths[0]} .. {paths[-1]}")
        return 0
    text = export_trace(trace, params, args.format)
    if args.output:
        Path(args.output).write_text(text, encoding="utf-8")
        print(f"{args.format} export written to {args.output}")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_top_follow(args: argparse.Namespace) -> int:
    """Live dashboard: tail a stream trace or a bench journal."""
    import time

    from repro.obs.follow import (
        FollowState,
        follow_document,
        read_journal_snapshot,
        render_follow,
        render_journal_follow,
    )

    if not args.trace:
        raise ConfigurationError(
            "--follow needs a file to tail: a stream trace from "
            "`repro run --stream` or a bench campaign journal")
    path = Path(args.trace)
    if not path.exists():
        raise ConfigurationError(f"nothing to follow: {path} does not "
                                 "exist (start the run first)")
    frame = 0
    if read_journal_snapshot(path) is not None:
        # Journal mode: the file is rewritten atomically per row, so
        # each tick re-reads the whole (small) document.
        while True:
            doc = read_journal_snapshot(path)
            if doc is not None:
                if args.json:
                    _print_json(doc)
                else:
                    print(render_journal_follow(doc))
            frame += 1
            done = (doc is not None
                    and set(doc.get("app_order", []))
                    <= set(doc.get("apps", {})))
            if done or (args.frames is not None
                        and frame >= args.frames):
                return 0
            time.sleep(args.interval)
    state = FollowState(path)
    try:
        while True:
            state.poll()
            if args.json:
                _print_json(follow_document(state))
            else:
                print(render_follow(state))
            frame += 1
            if state.complete or (args.frames is not None
                                  and frame >= args.frames):
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        print()
        return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.bench.schema import SCHEMA_NAME, BenchArtifact
    from repro.obs import top as obs_top

    if args.follow:
        return _cmd_top_follow(args)
    artifact_data = None
    if args.trace and not args.micro:
        try:
            data = json.loads(Path(args.trace).read_text(encoding="utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            data = None
        if isinstance(data, dict) and data.get("schema") == SCHEMA_NAME:
            artifact_data = data
    if artifact_data is not None:
        artifact = BenchArtifact.from_dict(artifact_data)
        if args.json:
            _print_json(obs_top.bench_top_document(artifact))
        else:
            print(obs_top.render_bench_top(artifact))
        return 0
    trace = _source_trace(args)
    result = obs_top.replay_for_top(trace, preset(args.preset))
    if args.json:
        _print_json(obs_top.top_document(result))
    else:
        print(obs_top.render_top(result))
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    """Translate a foreign trace and land it in the bench trace cache."""
    import time

    from repro.ingest import ingest_file, land_in_cache

    t0 = time.perf_counter()
    result = ingest_file(args.source, reader=args.reader,
                         cells=args.cells, time_unit=args.time_unit)
    wall_s = time.perf_counter() - t0
    trace_path: Path | None = None
    cache_hit = False
    if not args.no_cache:
        cached = land_in_cache(result, args.source, reader=args.reader,
                               cache_dir=args.cache_dir, wall_s=wall_s)
        trace_path = cached.trace_path
        cache_hit = cached.cache_hit
    if args.output:
        save_trace(result.trace, args.output)
        trace_path = Path(args.output)
    if args.json:
        _print_json({
            "schema": "repro-ingest-v1",
            "source": str(args.source),
            "reader": args.reader or "auto",
            "num_ranks": result.num_ranks,
            "num_cells": result.num_cells,
            "source_events": result.source_events,
            "synthesized_compute": result.synthesized_compute,
            "total_events": result.trace.total_events,
            "op_counts": dict(result.op_counts),
            "trace_path": str(trace_path) if trace_path else None,
            "cache_hit": cache_hit,
        })
        return 0
    print(f"ingested {args.source}: {result.source_events} foreign "
          f"records -> {result.trace.total_events} trace events on "
          f"{result.num_cells} cells ({result.num_ranks} ranks)")
    if result.synthesized_compute:
        print(f"  synthesized {result.synthesized_compute} COMPUTE "
              "events from timestamp gaps")
    counts = "  ".join(f"{op}={n}"
                       for op, n in sorted(result.op_counts.items()))
    print(f"  foreign op mix: {counts}")
    if trace_path is not None:
        hit = " (cache hit)" if cache_hit else ""
        print(f"  trace published at {trace_path}{hit}")
        print(f"  next: repro replay {trace_path} --preset ap1000+")
    return 0


def _cmd_params(args: argparse.Namespace) -> int:
    sys.stdout.write(format_params(preset(args.preset)))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    report = run_experiments(paper_scale=args.paper_scale,
                             names=tuple(args.apps), jobs=args.jobs)
    if args.format == "markdown":
        from repro.analysis.markdown import report_markdown
        print(report_markdown(report))
    else:
        print(report.render())
    if args.validate:
        from repro.analysis.validate import format_checks, validate_report
        checks = validate_report(report)
        print()
        print(format_checks(checks))
        if not all(c.passed for c in checks):
            return 1
    return 0 if report.all_verified else 1


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.bench.cache import DEFAULT_CACHE_DIR
    from repro.check import check_buggy, check_trace, report_json
    from repro.check.runner import (
        check_apps,
        check_conform,
        check_static_apps,
        check_static_buggy,
        lint_report,
    )

    reports = []
    ok = True
    if args.trace:
        trace = load_trace(args.trace)
        reports.append(check_trace(trace, args.trace))
    elif args.buggy:
        if args.static:
            reports, ok = check_static_buggy()
        else:
            reports, ok = check_buggy()
        # The buggy gate *passes* when the seeded diagnostics are found:
        # report cleanliness is inverted relative to every other mode.
        for report in reports:
            print(f"== {report.subject}: "
                  f"{report.stats.get('caught', 0)}"
                  f"/{report.stats.get('expected', 0)} expected "
                  f"diagnostics caught")
            if not args.quiet:
                body = report.render()
                if body:
                    print(body)
        if args.json:
            print(report_json(reports))
        print("buggy fixtures: "
              + ("all seeded bugs caught" if ok
                 else "SOME SEEDED BUGS MISSED"))
        return 0 if ok else 1
    elif args.static:
        names = tuple(args.apps) if args.apps else None
        reports.extend(check_static_apps(
            names, log=None if args.json else print))
    elif args.conform:
        names = tuple(args.apps) if args.apps else None
        reports.extend(check_conform(
            names,
            cache_dir=args.cache_dir or DEFAULT_CACHE_DIR,
            use_cache=not args.no_cache,
            log=None if args.json else print,
        ))
    else:
        if not args.lint_only:
            names = tuple(args.apps) if args.apps else None
            reports.extend(check_apps(
                names,
                cache_dir=args.cache_dir or DEFAULT_CACHE_DIR,
                use_cache=not args.no_cache,
                paper_scale=args.paper_scale,
                log=None if args.json else print,
            ))
        reports.append(lint_report())
    if args.json:
        print(report_json(reports))
    else:
        for report in reports:
            status = "clean" if report.clean else (
                f"{len(report.diagnostics)} diagnostic(s)")
            print(f"== {report.subject}: {status}")
            body = report.render()
            if body:
                print(body)
    clean = all(r.clean for r in reports)
    if not args.json:
        print("check: " + ("clean" if clean else "DIAGNOSTICS FOUND"))
    return 0 if clean else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.faults.chaos import SMOKE_APPS, chaos_sweep, recover_sweep
    from repro.faults.plan import FaultPlan, full_plans, smoke_plans

    if args.plan:
        plans = tuple(FaultPlan.load(args.plan))
    elif args.smoke:
        plans = smoke_plans(args.seed)
    else:
        plans = full_plans(args.seed)
    if args.recover:
        # Kill-and-resume sweep over the checkpoint-enabled apps.
        report = recover_sweep(
            tuple(args.apps) if args.apps else None, plans,
            seed=args.seed, cells=args.cells, smoke=args.smoke,
            snapshot_root=args.snapshot_dir,
            log=None if args.json else print)
    else:
        if args.apps:
            apps = tuple(args.apps)
        elif args.smoke:
            apps = SMOKE_APPS
        else:
            apps = None
        report = chaos_sweep(apps, plans, cells=args.cells,
                             check=not args.no_check,
                             log=None if args.json else print)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.summary())
        if not report.ok:
            # Structured summary for tooling even in text mode, so a CI
            # log always carries the machine-readable failure detail.
            print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    if report.ok:
        return 0
    return EXIT_DIVERGED if report.diverged else 1


def _bench_resume_command(args: argparse.Namespace) -> str:
    """The exact command that resumes an interrupted bench campaign."""
    parts = ["repro bench run"]
    if args.micro:
        parts.append("--micro")
    if args.smoke:
        parts.append("--smoke")
    if args.apps:
        parts.append("--apps " + " ".join(args.apps))
    if args.presets:
        parts.append("--presets " + " ".join(args.presets))
    if args.jobs != 1:
        parts.append(f"--jobs {args.jobs}")
    if args.cache_dir:
        parts.append(f"--cache-dir {args.cache_dir}")
    if args.no_cache:
        parts.append("--no-cache")
    if args.check:
        parts.append("--check")
    if args.output:
        parts.append(f"--output {args.output}")
    if args.output_dir != ".":
        parts.append(f"--output-dir {args.output_dir}")
    if args.journal:
        parts.append(f"--journal {args.journal}")
    parts.append("--resume")
    return " ".join(parts)


def _cmd_bench_run(args: argparse.Namespace) -> int:
    from repro.bench import (
        ALL_PRESETS,
        SMOKE_PRESETS,
        artifact_filename,
        bench_specs,
        micro_specs,
        run_bench,
        smoke_specs,
    )
    from repro.bench.cache import DEFAULT_CACHE_DIR

    if args.smoke and args.micro:
        print("choose one of --smoke / --micro", file=sys.stderr)
        return 2
    if args.micro:
        specs = micro_specs()
        preset_names = tuple(args.presets or ALL_PRESETS)
        grid_name = "micro"
    elif args.smoke:
        specs = smoke_specs()
        preset_names = tuple(args.presets or SMOKE_PRESETS)
        grid_name = "smoke"
    else:
        specs = bench_specs(tuple(args.apps) if args.apps else None)
        preset_names = tuple(args.presets or ALL_PRESETS)
        grid_name = "bench"
    journal_path = Path(args.journal) if args.journal else None
    if journal_path is None and not args.no_cache:
        cache_root = (Path(args.cache_dir) if args.cache_dir
                      else DEFAULT_CACHE_DIR)
        journal_path = cache_root / f"journal-{grid_name}.json"
    # A SIGTERM (CI timeout, scheduler preemption) takes the same clean
    # path as Ctrl-C: the journal already holds every completed row.
    def _term_handler(signum, frame):
        raise KeyboardInterrupt

    previous_term = None
    with contextlib.suppress(ValueError):
        previous_term = signal.signal(signal.SIGTERM, _term_handler)
    try:
        outcome = run_bench(
            specs,
            preset_names,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            use_cache=not args.no_cache,
            grid_name=grid_name,
            log=print,
            check=args.check,
            journal_path=journal_path,
            resume=args.resume,
        )
    except KeyboardInterrupt:
        print()
        if journal_path is not None:
            print(f"interrupted: completed rows journaled in "
                  f"{journal_path}")
            print("resume with: " + _bench_resume_command(args))
            return EXIT_RESUMABLE
        print("interrupted (no journal: rerun without --no-cache, or "
              "pass --journal, to make campaigns resumable)")
        return 130
    finally:
        if previous_term is not None:
            with contextlib.suppress(ValueError, TypeError):
                signal.signal(signal.SIGTERM, previous_term)
    artifact = outcome.artifact
    for app in artifact.app_order:
        result = artifact.apps[app]
        status = "VERIFIED" if result.verified else "FAILED"
        elapsed = "  ".join(
            f"{p}={result.presets[p].elapsed_us:.1f}us"
            for p in preset_names
        )
        print(f"{app:10s} {status:8s} {elapsed}")
    print(
        f"grid {grid_name}: {len(specs)} apps x {len(preset_names)} "
        f"presets, jobs={args.jobs}, wall {artifact.run['wall_s']:.2f}s "
        f"(functional {artifact.run['stage_wall_s']['functional']:.2f}s, "
        f"replay {artifact.run['stage_wall_s']['replay']:.2f}s, "
        f"cache hits {artifact.run['cache']['hits']})"
    )
    if args.check:
        for app, report in outcome.check_reports.items():
            if not report.clean:
                print(f"check {app}:")
                print(report.render())
        status = "clean" if outcome.all_check_clean else "DIAGNOSTICS FOUND"
        print(f"check stage: {status}")
    if args.output:
        path = artifact.save(args.output)
    else:
        path = artifact.save(Path(args.output_dir) / artifact_filename())
    print(f"artifact written to {path}")
    ok = artifact.all_verified and (not args.check
                                    or outcome.all_check_clean)
    return 0 if ok else 1


def _cmd_bench_perf(args: argparse.Namespace) -> int:
    from repro.bench.perf import baseline_from_report, run_perf

    baseline = None if args.no_baseline else args.baseline
    report = run_perf(
        cache_dir=args.cache_dir,
        replay_reps=args.replay_reps,
        functional_reps=args.functional_reps,
        baseline_path=baseline,
        tolerance_pct=args.tolerance,
        log=print,
    )
    doc = report.document
    print(f"replay speedup: {doc['replay']['aggregate_speedup']:.1f}x "
          f"aggregate (floor {doc['gates']['replay_min_speedup']:g}x)")
    print(f"functional speedup: {doc['functional']['speedup']:.1f}x "
          f"(floor {doc['gates']['functional_min_speedup']:g}x)")
    print(f"sharded speedup: {doc['sharded']['speedup']:.1f}x over "
          f"serial at {doc['sharded']['config']['num_cells']} cells "
          f"(floor {doc['gates']['sharded_min_speedup']:g}x)")
    path = report.save(args.output)
    print(f"perf report written to {path}")
    if args.write_baseline:
        base_path = Path(args.baseline)
        base_path.parent.mkdir(parents=True, exist_ok=True)
        base_path.write_text(
            json.dumps(baseline_from_report(doc), indent=2, sort_keys=True)
            + "\n",
            encoding="utf-8",
        )
        print(f"baseline written to {base_path}")
    if report.passed:
        print("PASS: perf gates hold")
        return 0
    for failure in report.failures:
        print(f"FAIL: {failure}")
    return 1


def _cmd_bench_weak(args: argparse.Namespace) -> int:
    from repro.bench.weak import WEAK_SHARDS, run_weak

    kwargs = {}
    if args.points:
        kwargs["points"] = tuple(args.points)
    if args.apps:
        kwargs["apps"] = tuple(args.apps)
    document = run_weak(shards=args.shards or WEAK_SHARDS,
                        log=print, **kwargs)
    path = Path(args.output)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    print(f"weak-scaling artifact written to {path} "
          f"({len(document['rows'])} rows, byte-identity asserted)")
    return 0


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    from repro.bench import BenchArtifact, compare_artifacts

    current = BenchArtifact.load(args.current)
    baseline = BenchArtifact.load(args.baseline)
    comparison = compare_artifacts(
        current,
        baseline,
        tolerance_pct=args.tolerance,
        wall_tolerance_pct=args.wall_tolerance,
    )
    print(comparison.render())
    if comparison.passed:
        print(f"PASS: within {args.tolerance:g}% of baseline")
        return 0
    print(f"FAIL: regression(s) beyond {args.tolerance:g}% tolerance")
    return 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AP1000+ PUT/GET reproduction (ASPLOS VI, 1994)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list workloads and presets")
    p_list.set_defaults(func=_cmd_list)

    p_run = sub.add_parser("run", help="run one workload functionally")
    p_run.add_argument("app", choices=list(ORDER))
    p_run.add_argument("--cells", type=int, default=None,
                       help="override the cell count")
    p_run.add_argument("--paper-scale", action="store_true",
                       help="use the paper's problem size")
    p_run.add_argument("--trace", metavar="FILE",
                       help="write the recorded trace as JSON lines")
    p_run.add_argument("--stream", metavar="FILE",
                       help="stream the trace to FILE incrementally "
                            "while the run executes (bounded memory; "
                            "tail it live with `repro top FILE "
                            "--follow`)")
    p_run.add_argument("--no-replay", action="store_true",
                       help="skip the MLSim replay summary")
    p_run.add_argument("--sanitize", action="store_true",
                       help="annotate the trace with byte-range "
                            "footprints for `repro check`")
    p_run.add_argument("--trace-capacity", type=int, default=None,
                       metavar="N",
                       help="override the trace buffer's event capacity "
                            "(the AP1000 probes had the same limit)")
    p_run.add_argument("--shards", type=int, default=None, metavar="N",
                       help="run on the sharded multiprocess engine with "
                            "N worker processes (byte-identical traces; "
                            "see docs/sharding.md)")
    p_run.add_argument("--observe", action="store_true",
                       help="attach the repro.obs machine observer "
                            "(per-link traffic, queue occupancy)")
    p_run.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                       help="save machine snapshots here; also makes "
                            "SIGINT/SIGTERM park at the next safe "
                            "point, save a final snapshot, and exit "
                            f"{EXIT_RESUMABLE} with a resume command "
                            "(docs/checkpoint.md)")
    p_run.add_argument("--checkpoint-every", type=int, default=None,
                       metavar="N",
                       help="checkpoint every N safe points per cell")
    p_run.add_argument("--resume-from", metavar="SNAPSHOT", default=None,
                       help="resume from a snapshot directory (or a "
                            "--checkpoint-dir, which picks its latest "
                            "snapshot) instead of starting fresh")
    p_run.add_argument("--json", action="store_true",
                       help="machine-readable repro-run-v1 output")
    p_run.set_defaults(func=_cmd_run)

    p_replay = sub.add_parser("replay",
                              help="replay a recorded trace through MLSim")
    p_replay.add_argument("trace", help="trace file from `run --trace`")
    p_replay.add_argument("--preset", default="ap1000+",
                          choices=sorted(PRESETS),
                          help="parameter preset (default: ap1000+)")
    p_replay.add_argument("--params", metavar="FILE",
                          help="custom Figure 6 style parameter file")
    p_replay.add_argument("--timeline", action="store_true",
                          help="print a per-PE ASCII Gantt chart")
    p_replay.add_argument("--json", action="store_true",
                          help="machine-readable repro-replay-v1 output "
                               "(includes the replay metric document)")
    p_replay.set_defaults(func=_cmd_replay)

    p_trace = sub.add_parser(
        "trace", help="trace tooling (Perfetto/Chrome timeline export)")
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    p_trace_exp = trace_sub.add_parser(
        "export",
        help="export a trace as Perfetto/Chrome JSON or native JSONL")
    p_trace_exp.add_argument("trace", nargs="?",
                             help="trace file from `run --trace`")
    p_trace_exp.add_argument("--micro", action="store_true",
                             help="export the built-in micro workload "
                                  "(the CI golden-fixture subject)")
    p_trace_exp.add_argument("--app", choices=list(ORDER), default=None,
                             help="record and export a workload instead")
    p_trace_exp.add_argument("--cells", type=int, default=None,
                             help="cell count for --micro/--app")
    p_trace_exp.add_argument("--format", default="perfetto",
                             choices=("perfetto", "chrome", "jsonl"),
                             help="output format (default: perfetto)")
    p_trace_exp.add_argument("--preset", default="ap1000+",
                             choices=sorted(PRESETS),
                             help="replay preset (default: ap1000+)")
    p_trace_exp.add_argument("--params", metavar="FILE",
                             help="custom parameter file for the replay")
    p_trace_exp.add_argument("-o", "--output", metavar="FILE",
                             help="write here instead of stdout")
    p_trace_exp.add_argument("--chunk-events", type=int, default=None,
                             metavar="N",
                             help="split the export into standalone "
                                  "documents of <= N timeline events "
                                  "each (requires -o; flow arrows stay "
                                  "linked across chunks)")
    p_trace_exp.set_defaults(func=_cmd_trace_export)

    p_top = sub.add_parser(
        "top",
        help="ASCII utilization dashboard for a trace or bench artifact")
    p_top.add_argument("trace", nargs="?",
                       help="trace file or BENCH_*.json artifact")
    p_top.add_argument("--micro", action="store_true",
                       help="show the built-in micro workload")
    p_top.add_argument("--cells", type=int, default=None,
                       help="cell count for --micro")
    p_top.add_argument("--preset", default="ap1000+",
                       choices=sorted(PRESETS),
                       help="replay preset (default: ap1000+)")
    p_top.add_argument("--follow", action="store_true",
                       help="live mode: tail an in-progress stream "
                            "trace (`repro run --stream`) or bench "
                            "journal and redraw until it completes")
    p_top.add_argument("--interval", type=float, default=1.0,
                       metavar="SEC",
                       help="--follow redraw interval (default: 1s)")
    p_top.add_argument("--frames", type=int, default=None, metavar="N",
                       help="--follow: stop after N frames instead of "
                            "following to completion")
    p_top.add_argument("--json", action="store_true",
                       help="machine-readable repro-top-v1 output")
    p_top.set_defaults(func=_cmd_top)

    p_ingest = sub.add_parser(
        "ingest",
        help="translate a foreign trace (VEF text, MPI JSON-lines) "
             "into the native format and land it in the trace cache")
    p_ingest.add_argument("source", metavar="FILE",
                          help="foreign trace file (see docs/ingest.md)")
    p_ingest.add_argument("--reader", default=None, metavar="NAME",
                          help="trace reader plugin (default: sniff "
                               "from the file; `repro list` readers: "
                               "vef, mpijson)")
    p_ingest.add_argument("--cells", type=int, default=None,
                          help="machine size to map onto (default: the "
                               "trace's rank count)")
    p_ingest.add_argument("--time-unit", type=float, default=1.0,
                          metavar="US",
                          help="microseconds per foreign time unit "
                               "(default: 1.0)")
    p_ingest.add_argument("--cache-dir", metavar="DIR", default=None,
                          help="trace cache root (default: "
                               "benchmarks/.trace_cache)")
    p_ingest.add_argument("--no-cache", action="store_true",
                          help="skip the cache; use with -o to just "
                               "convert the file")
    p_ingest.add_argument("-o", "--output", metavar="FILE",
                          help="also write the translated trace here")
    p_ingest.add_argument("--json", action="store_true",
                          help="machine-readable repro-ingest-v1 output")
    p_ingest.set_defaults(func=_cmd_ingest)

    p_params = sub.add_parser("params",
                              help="print a parameter file (Figure 6)")
    p_params.add_argument("preset", choices=sorted(PRESETS))
    p_params.set_defaults(func=_cmd_params)

    p_report = sub.add_parser("report", help="regenerate the evaluation")
    p_report.add_argument("--paper-scale", action="store_true")
    p_report.add_argument("--apps", nargs="*", default=list(ORDER),
                          choices=list(ORDER))
    p_report.add_argument("--format", default="text",
                          choices=("text", "markdown"))
    p_report.add_argument("--validate", action="store_true",
                          help="check the paper's qualitative results")
    p_report.add_argument("--jobs", type=int, default=1,
                          help="worker processes for the sweep")
    p_report.set_defaults(func=_cmd_report)

    p_check = sub.add_parser(
        "check",
        help="race detector, synchronization sanitizer, and SPMD lint")
    p_check.add_argument("apps", nargs="*", metavar="APP",
                         choices=list(WORKLOADS) + [[]],
                         help="applications to check (default: all)")
    p_check.add_argument("--all", action="store_true", dest="check_all",
                         help="check every shipped application "
                              "(the default when no apps are named)")
    p_check.add_argument("--buggy", action="store_true",
                         help="verify the checker against the seeded "
                              "bugs in examples/buggy/ (with --static: "
                              "the static analyzer's own gate)")
    p_check.add_argument("--lint-only", action="store_true",
                         help="run only the static SPMD lint")
    p_check.add_argument("--static", action="store_true",
                         help="static communication-graph analysis: "
                              "concolically execute the apps at "
                              "P = 4, 16, 64 and report scale-generic "
                              "findings (no traces recorded)")
    p_check.add_argument("--conform", action="store_true",
                         help="check recorded traces are "
                              "linearizations of the static graph and "
                              "match its predicted message counts at "
                              "P = 4, 16, 64")
    p_check.add_argument("--trace", metavar="FILE",
                         help="check one recorded trace file instead")
    p_check.add_argument("--json", action="store_true",
                         help="machine-readable repro-check-v1 output")
    p_check.add_argument("--quiet", action="store_true",
                         help="suppress per-diagnostic detail (--buggy)")
    p_check.add_argument("--paper-scale", action="store_true",
                         help="check the paper-scale configurations")
    p_check.add_argument("--cache-dir", metavar="DIR", default=None,
                         help="trace cache location (default: "
                              "benchmarks/.trace_cache)")
    p_check.add_argument("--no-cache", action="store_true",
                         help="always re-record, never touch the cache")
    p_check.set_defaults(func=_cmd_check)

    p_chaos = sub.add_parser(
        "chaos",
        help="sweep fault-injection plans over the shipped apps and "
             "demand bit-identical results (docs/faults.md)")
    p_chaos.add_argument("apps", nargs="*", metavar="APP",
                         choices=list(ORDER) + [[]],
                         help="applications to torture (default: all; "
                              "--smoke defaults to EP MatMul)")
    p_chaos.add_argument("--smoke", action="store_true",
                         help="small CI sweep: 2 apps x 2 plans")
    p_chaos.add_argument("--seed", type=int, default=1994,
                         help="base seed for the built-in plan sets")
    p_chaos.add_argument("--plan", metavar="FILE",
                         help="JSON fault plan (or list of plans) to use "
                              "instead of the built-in sets")
    p_chaos.add_argument("--cells", type=int, default=None,
                         help="override every app's cell count")
    p_chaos.add_argument("--no-check", action="store_true",
                         help="skip the repro.check pass over each "
                              "faulted trace")
    p_chaos.add_argument("--json", action="store_true",
                         help="machine-readable sweep report")
    p_chaos.add_argument("--recover", action="store_true",
                         help="kill-and-resume sweep instead: "
                              "checkpoint, die after the capture, "
                              "resume, and demand byte-identical "
                              "completion (exit "
                              f"{EXIT_DIVERGED} on digest divergence)")
    p_chaos.add_argument("--snapshot-dir", metavar="DIR", default=None,
                         help="keep --recover snapshots here instead "
                              "of temp dirs (CI artifact upload)")
    p_chaos.set_defaults(func=_cmd_chaos)

    p_bench = sub.add_parser(
        "bench", help="parallel benchmark sweeps with JSON artifacts")
    bench_sub = p_bench.add_subparsers(dest="bench_command", required=True)

    p_bench_run = bench_sub.add_parser(
        "run", help="run the (application x preset) grid")
    p_bench_run.add_argument("--apps", nargs="*", metavar="APP",
                             choices=list(ORDER),
                             help="subset of the benchmark grid")
    p_bench_run.add_argument("--presets", nargs="*", metavar="PRESET",
                             choices=sorted(PRESETS),
                             help="parameter presets to replay under")
    p_bench_run.add_argument("--micro", action="store_true",
                             help="run the perf-lane micro grid "
                                  "(latency microbenchmarks + small CG)")
    p_bench_run.add_argument("--smoke", action="store_true",
                             help="small CI grid: EP + MatMul, 2 presets")
    p_bench_run.add_argument("--jobs", type=int, default=1,
                             help="worker processes (default: 1, serial)")
    p_bench_run.add_argument("--output", metavar="FILE",
                             help="artifact path (default: "
                                  "BENCH_<timestamp>.json)")
    p_bench_run.add_argument("--output-dir", metavar="DIR", default=".",
                             help="directory for the default artifact name")
    p_bench_run.add_argument("--cache-dir", metavar="DIR", default=None,
                             help="trace cache location (default: "
                                  "benchmarks/.trace_cache)")
    p_bench_run.add_argument("--no-cache", action="store_true",
                             help="ignore and do not write the trace cache")
    p_bench_run.add_argument("--check", action="store_true",
                             help="run the race/synchronization checker "
                                  "over every recorded trace")
    p_bench_run.add_argument("--journal", metavar="FILE", default=None,
                             help="campaign journal path (default: "
                                  "<cache-dir>/journal-<grid>.json; "
                                  "every completed row is recorded "
                                  "atomically)")
    p_bench_run.add_argument("--resume", action="store_true",
                             help="resume a killed campaign from its "
                                  "journal, re-simulating only the "
                                  "missing rows (byte-identical "
                                  "results section)")
    p_bench_run.set_defaults(func=_cmd_bench_run)

    p_bench_perf = bench_sub.add_parser(
        "perf",
        help="measure replay/scheduler speedups and gate on regressions")
    p_bench_perf.add_argument("--output", metavar="FILE",
                              default="perf_report.json",
                              help="perf report path "
                                   "(default perf_report.json)")
    p_bench_perf.add_argument("--baseline", metavar="FILE",
                              default="benchmarks/perf_baseline.json",
                              help="checked-in speedup baseline to gate "
                                   "against")
    p_bench_perf.add_argument("--no-baseline", action="store_true",
                              help="skip the baseline comparison (hard "
                                   "floors still apply)")
    p_bench_perf.add_argument("--write-baseline", action="store_true",
                              help="record this run's speedups as the "
                                   "new baseline")
    p_bench_perf.add_argument("--tolerance", type=float, default=25.0,
                              metavar="PCT",
                              help="allowed %% drop below the baseline "
                                   "speedups (default 25)")
    p_bench_perf.add_argument("--replay-reps", type=int, default=3,
                              metavar="N",
                              help="repetitions per replay A/B timing "
                                   "(minimum kept; default 3)")
    p_bench_perf.add_argument("--functional-reps", type=int, default=2,
                              metavar="N",
                              help="repetitions per scheduler A/B timing "
                                   "(default 2)")
    p_bench_perf.add_argument("--cache-dir", metavar="DIR", default=None,
                              help="trace cache directory (default "
                                   "benchmarks/.trace_cache)")
    p_bench_perf.set_defaults(func=_cmd_bench_perf)

    p_bench_weak = bench_sub.add_parser(
        "weak",
        help="weak-scaling study: Figure 8 extended to 256-4096 cells "
             "on the sharded engine")
    p_bench_weak.add_argument("--points", nargs="*", type=int,
                              metavar="CELLS", default=None,
                              help="machine sizes (default 256 1024 4096; "
                                   "sizes past 1024 use extended=True)")
    p_bench_weak.add_argument("--shards", type=int, default=None,
                              metavar="N",
                              help="worker processes per sharded run "
                                   "(default 4)")
    p_bench_weak.add_argument("--apps", nargs="*", metavar="APP",
                              choices=["EP", "RingShift"], default=None,
                              help="restrict the study's apps")
    p_bench_weak.add_argument("--output", metavar="FILE",
                              default="BENCH_weak_scaling.json",
                              help="artifact path (default "
                                   "BENCH_weak_scaling.json)")
    p_bench_weak.set_defaults(func=_cmd_bench_weak)

    p_bench_cmp = bench_sub.add_parser(
        "compare", help="compare an artifact against a baseline")
    p_bench_cmp.add_argument("current", help="BENCH_*.json to check")
    p_bench_cmp.add_argument("--baseline", required=True, metavar="FILE",
                             help="baseline BENCH_*.json")
    p_bench_cmp.add_argument("--tolerance", type=float, default=5.0,
                             metavar="PCT",
                             help="allowed simulated-metric drift "
                                  "(default: 5%%)")
    p_bench_cmp.add_argument("--wall-tolerance", type=float, default=None,
                             metavar="PCT",
                             help="also gate wall-clock stage times "
                                  "(off by default: noisy across hosts)")
    p_bench_cmp.set_defaults(func=_cmd_bench_compare)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        # Simulator-domain failures (trace buffer overflow, deadlock,
        # communication timeout, bad configuration...) are reported as
        # one clean message, not a traceback.
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
