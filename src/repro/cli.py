"""Command-line interface: run workloads, record/replay traces, print
parameter files, and reproduce the full evaluation.

Usage::

    python -m repro.cli run CG --cells 16 --trace cg.jsonl
    python -m repro.cli replay cg.jsonl --preset ap1000+
    python -m repro.cli replay cg.jsonl --params my_model.params
    python -m repro.cli params ap1000
    python -m repro.cli report [--paper-scale] [--apps EP MatMul ...]
    python -m repro.cli list

The ``run``/``replay`` split mirrors the paper's methodology: traces are
recorded once on the (functional) machine, then replayed through MLSim
under as many parameter files as desired.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis.report import run_experiments
from repro.apps.workloads import ORDER, workload
from repro.mlsim.params import PRESETS, format_params, parse_params, preset
from repro.mlsim.simulator import simulate, simulate_models
from repro.trace.io import load_trace, save_trace
from repro.trace.stats import collect_statistics, format_table3_row


def _cmd_list(args: argparse.Namespace) -> int:
    print("workloads (section 5.2):")
    for name in ORDER:
        w = workload(name)
        print(f"  {name:10s} {w.language:12s} default {w.default_pes:3d} "
              f"cells, paper {w.paper_pes:3d} cells")
    print("\nparameter presets (Figure 6):", ", ".join(sorted(PRESETS)))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    w = workload(args.app)
    run = w.run(paper_scale=args.paper_scale, num_cells=args.cells)
    status = "VERIFIED" if run.verified else "FAILED"
    print(f"{run.name}: functional run {status} on "
          f"{run.machine.config.num_cells} cells, "
          f"{run.trace.total_events} trace events")
    for name, value in run.checks.items():
        print(f"  check {name}: {value}")
    print(format_table3_row(run.name, run.statistics))
    if args.trace:
        save_trace(run.trace, args.trace)
        print(f"trace written to {args.trace}")
    if not args.no_replay:
        cmp = simulate_models(run.trace)
        plus, fast = cmp.table2_row()
        print(f"Table 2 speedups vs AP1000: AP1000+ {plus:.2f}, "
              f"AP1000/SuperSPARC {fast:.2f}")
    return 0 if run.verified else 1


def _cmd_replay(args: argparse.Namespace) -> int:
    trace = load_trace(args.trace)
    if args.params:
        params = parse_params(args.params, name=args.params)
    else:
        params = preset(args.preset)
    if args.timeline:
        from repro.mlsim.engine import MLSimEngine
        from repro.mlsim.timeline import render_timeline
        trace.coalesce_compute()
        engine = MLSimEngine(trace, params, record_timeline=True)
        result = engine.run()
        print(render_timeline(engine.timeline))
    else:
        result = simulate(trace, params)
    print(f"model {result.model_name}: elapsed {result.elapsed_us:.1f} us, "
          f"{result.messages} messages, "
          f"{result.bytes_on_wire} payload bytes")
    print(f"  mean execution {result.mean_execution:12.1f} us")
    print(f"  mean rtsys     {result.mean_rtsys:12.1f} us")
    print(f"  mean overhead  {result.mean_overhead:12.1f} us")
    print(f"  mean idle      {result.mean_idle:12.1f} us")
    return 0


def _cmd_params(args: argparse.Namespace) -> int:
    sys.stdout.write(format_params(preset(args.preset)))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    report = run_experiments(paper_scale=args.paper_scale,
                             names=tuple(args.apps))
    if args.format == "markdown":
        from repro.analysis.markdown import report_markdown
        print(report_markdown(report))
    else:
        print(report.render())
    if args.validate:
        from repro.analysis.validate import format_checks, validate_report
        checks = validate_report(report)
        print()
        print(format_checks(checks))
        if not all(c.passed for c in checks):
            return 1
    return 0 if report.all_verified else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AP1000+ PUT/GET reproduction (ASPLOS VI, 1994)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list workloads and presets")
    p_list.set_defaults(func=_cmd_list)

    p_run = sub.add_parser("run", help="run one workload functionally")
    p_run.add_argument("app", choices=list(ORDER))
    p_run.add_argument("--cells", type=int, default=None,
                       help="override the cell count")
    p_run.add_argument("--paper-scale", action="store_true",
                       help="use the paper's problem size")
    p_run.add_argument("--trace", metavar="FILE",
                       help="write the recorded trace as JSON lines")
    p_run.add_argument("--no-replay", action="store_true",
                       help="skip the MLSim replay summary")
    p_run.set_defaults(func=_cmd_run)

    p_replay = sub.add_parser("replay",
                              help="replay a recorded trace through MLSim")
    p_replay.add_argument("trace", help="trace file from `run --trace`")
    p_replay.add_argument("--preset", default="ap1000+",
                          choices=sorted(PRESETS),
                          help="parameter preset (default: ap1000+)")
    p_replay.add_argument("--params", metavar="FILE",
                          help="custom Figure 6 style parameter file")
    p_replay.add_argument("--timeline", action="store_true",
                          help="print a per-PE ASCII Gantt chart")
    p_replay.set_defaults(func=_cmd_replay)

    p_params = sub.add_parser("params",
                              help="print a parameter file (Figure 6)")
    p_params.add_argument("preset", choices=sorted(PRESETS))
    p_params.set_defaults(func=_cmd_params)

    p_report = sub.add_parser("report", help="regenerate the evaluation")
    p_report.add_argument("--paper-scale", action="store_true")
    p_report.add_argument("--apps", nargs="*", default=list(ORDER),
                          choices=list(ORDER))
    p_report.add_argument("--format", default="text",
                          choices=("text", "markdown"))
    p_report.add_argument("--validate", action="store_true",
                          help="check the paper's qualitative results")
    p_report.set_defaults(func=_cmd_report)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
