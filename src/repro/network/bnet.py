"""Functional model of the B-net broadcast network.

The B-net is a 50 MB/s bus shared by the host and all cells, used for
broadcast communication and for data distribution/collection (Figure 4).
Functionally it is a single FIFO: one sender's broadcast is seen by every
(other) cell, in the same order everywhere — a total order, unlike the
per-pair order of the T-net.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.core.errors import CommunicationError
from repro.network.packet import Packet

#: Peak B-net bandwidth in megabytes per second.
BNET_BANDWIDTH_MB_S = 50.0

#: Pseudo cell id used for the host workstation on the B-net.
HOST_ID = -1


@dataclass
class BNet:
    """Totally ordered broadcast transport."""

    num_cells: int
    _queues: dict[int, deque[Packet]] = field(default_factory=dict)
    broadcast_count: int = 0
    #: Next serial stamped on a packet entering the bus (per instance).
    _next_serial: int = 0
    #: Optional :class:`repro.obs.observer.MachineObserver`; its
    #: ``on_broadcast`` hook counts shared-bus frames and bytes.
    observer: Any = None

    def _queue(self, cell_id: int) -> deque[Packet]:
        return self._queues.setdefault(cell_id, deque())

    def broadcast(self, packet: Packet) -> None:
        """Send ``packet`` to every cell except the source.

        The source may be a cell or :data:`HOST_ID`.
        """
        if packet.src != HOST_ID and not 0 <= packet.src < self.num_cells:
            raise CommunicationError(f"invalid broadcast source {packet.src}")
        if packet.serial < 0:
            packet.serial = self._next_serial
            self._next_serial += 1
        for cell in range(self.num_cells):
            if cell != packet.src:
                self._queue(cell).append(packet)
        self.broadcast_count += 1
        if self.observer is not None:
            self.observer.on_broadcast(packet)

    def scatter(self, packets: list[Packet]) -> None:
        """Host-style data distribution: point-to-point over the shared bus."""
        for packet in packets:
            if not 0 <= packet.dst < self.num_cells:
                raise CommunicationError(
                    f"invalid scatter target {packet.dst}")
            if packet.serial < 0:
                packet.serial = self._next_serial
                self._next_serial += 1
            self._queue(packet.dst).append(packet)

    def receive(self, cell_id: int) -> Packet:
        """Pop the next broadcast visible at ``cell_id``."""
        queue = self._queue(cell_id)
        if not queue:
            raise CommunicationError(f"no broadcast pending at cell {cell_id}")
        return queue.popleft()

    def pending(self, cell_id: int) -> int:
        return len(self._queue(cell_id))

    def transfer_time_us(self, payload_bytes: int) -> float:
        """Bus time for a payload at peak bandwidth, in microseconds."""
        return payload_bytes / BNET_BANDWIDTH_MB_S
