"""AP1000+ interconnect models: T-net (torus), B-net (broadcast), S-net
(barrier), plus the packet formats they carry."""

from repro.network.bnet import BNet, BNET_BANDWIDTH_MB_S, HOST_ID
from repro.network.packet import HEADER_BYTES, Packet, PacketKind, StrideSpec
from repro.network.snet import SNet
from repro.network.tnet import LINK_BANDWIDTH_MB_S, LINKS_PER_CELL, TNet
from repro.network.topology import TorusTopology

__all__ = [
    "BNet",
    "BNET_BANDWIDTH_MB_S",
    "HOST_ID",
    "HEADER_BYTES",
    "Packet",
    "PacketKind",
    "StrideSpec",
    "SNet",
    "TNet",
    "LINK_BANDWIDTH_MB_S",
    "LINKS_PER_CELL",
    "TorusTopology",
]
