"""Functional model of the T-net point-to-point torus network.

The T-net uses static (dimension-order) routing, so packets between a fixed
(source, destination) pair never reorder.  The functional model enforces
exactly that invariant: one FIFO channel per ordered cell pair.  Timing is
not modelled here — MLSim (:mod:`repro.mlsim`) charges network time from its
parameter file; this model is about *ordering and delivery semantics*, which
the acknowledge idiom (GET after PUT) depends on.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.core.errors import CommunicationError
from repro.network.packet import Packet
from repro.network.topology import TorusTopology

#: Peak bandwidth of one T-net link in megabytes per second (Table 1 / Fig 5).
LINK_BANDWIDTH_MB_S = 25.0
#: Number of parallel links per cell.
LINKS_PER_CELL = 4


@dataclass
class TNet:
    """In-order per-pair packet transport over a 2-D torus."""

    topology: TorusTopology
    _channels: dict[tuple[int, int], deque[Packet]] = field(
        default_factory=dict)
    delivered_count: int = 0
    injected_count: int = 0
    #: Next serial to stamp on a first-time injection (per network
    #: instance, so serials are deterministic per machine run).
    _next_serial: int = 0
    #: Optional :class:`repro.obs.observer.MachineObserver`; its
    #: ``on_inject`` hook charges per-link frame/byte counters.
    observer: Any = None

    def validate_endpoints(self, packet: Packet) -> None:
        """Reject packets addressed outside the machine."""
        n = self.topology.num_cells
        if not (0 <= packet.src < n and 0 <= packet.dst < n):
            raise CommunicationError(
                f"packet endpoints ({packet.src} -> {packet.dst}) outside "
                f"{n}-cell machine"
            )

    def inject(self, packet: Packet) -> None:
        """Accept a packet from a cell's MSC+ for transport.

        A packet entering the network for the first time is stamped with
        the next serial; a retransmission (fault layer) keeps the serial
        of its first crossing so SEND/RECEIVE matching survives retries.
        """
        self.validate_endpoints(packet)
        if packet.serial < 0:
            packet.serial = self._next_serial
            self._next_serial += 1
        channel = self._channels.setdefault((packet.src, packet.dst),
                                            deque())
        channel.append(packet)
        self.injected_count += 1
        if self.observer is not None:
            self.observer.on_inject(packet)

    def pending(self, src: int, dst: int) -> int:
        """Number of packets in flight from ``src`` to ``dst``."""
        return len(self._channels.get((src, dst), ()))

    def pending_for(self, dst: int) -> int:
        """Number of packets in flight toward ``dst`` from anyone."""
        return sum(
            len(q) for (s, d), q in self._channels.items() if d == dst
        )

    def pending_from(self, src: int) -> int:
        """Number of packets in flight out of ``src`` toward anyone."""
        return sum(
            len(q) for (s, d), q in self._channels.items() if s == src
        )

    def deliver_next(self, src: int, dst: int) -> Packet:
        """Pop the oldest in-flight packet on the (src, dst) channel."""
        queue = self._channels.get((src, dst))
        if not queue:
            raise CommunicationError(
                f"no packet in flight from {src} to {dst}")
        self.delivered_count += 1
        return queue.popleft()

    def drain_to(self, dst: int) -> list[Packet]:
        """Deliver every in-flight packet destined to ``dst``.

        Packets from different sources are interleaved by injection order
        (their serial numbers), which is one legal network ordering; packets
        from the same source stay in order, which is the *guaranteed*
        ordering.
        """
        ready: list[Packet] = []
        for (_src, d), queue in self._channels.items():
            if d == dst:
                ready.extend(queue)
                queue.clear()
        ready.sort(key=lambda p: p.serial)
        self.delivered_count += len(ready)
        return ready

    def drain_all(self) -> list[Packet]:
        """Deliver everything in flight, in injection order."""
        ready: list[Packet] = []
        for queue in self._channels.values():
            ready.extend(queue)
            queue.clear()
        ready.sort(key=lambda p: p.serial)
        self.delivered_count += len(ready)
        return ready

    @property
    def in_flight(self) -> int:
        return sum(len(q) for q in self._channels.values())

    def transfer_time_us(self, payload_bytes: int) -> float:
        """Wire time for a payload at peak link bandwidth, in microseconds."""
        return payload_bytes / LINK_BANDWIDTH_MB_S
