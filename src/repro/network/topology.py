"""Two-dimensional torus topology of the T-net.

The AP1000+ connects 4 to 1024 cells with a two-dimensional torus network
(T-net) that uses *static* dimension-order routing: a message first travels
along the x ring to the destination column, then along the y ring to the
destination row.  Static routing implies that messages between any fixed
(source, destination) pair traverse the same path and are delivered in
order — a property the paper exploits to use a GET issued after a PUT as
the PUT's acknowledgment (section 4.1, "Acknowledge packet").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ConfigurationError


def _ring_hops(src: int, dst: int, size: int) -> int:
    """Minimal hop count between two positions on a ring of ``size``."""
    forward = (dst - src) % size
    return min(forward, size - forward)


def _ring_path(src: int, dst: int, size: int) -> list[int]:
    """Positions visited (excluding ``src``) along the shorter ring arc.

    Ties between the two arcs are broken toward the forward (+1) direction,
    matching a deterministic static router.
    """
    forward = (dst - src) % size
    backward = size - forward
    if forward == 0:
        return []
    step = 1 if forward <= backward else -1
    hops = min(forward, backward)
    return [(src + step * i) % size for i in range(1, hops + 1)]


@dataclass(frozen=True)
class TorusTopology:
    """A ``width`` x ``height`` torus with dimension-order (x-then-y) routing.

    Cell IDs are assigned in row-major order: cell ``i`` sits at column
    ``i % width`` and row ``i // width``.
    """

    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise ConfigurationError(
                f"torus dimensions must be positive, got "
                f"{self.width}x{self.height}"
            )

    @classmethod
    def for_cells(cls, num_cells: int) -> "TorusTopology":
        """Build the squarest torus that holds exactly ``num_cells`` cells.

        The AP1000+ ships in configurations of 4..1024 cells; we accept any
        positive cell count and pick the factorization w*h = n with w >= h
        and w - h minimal, as the physical cabinets did for supported sizes.
        """
        if num_cells < 1:
            raise ConfigurationError(
                f"need at least one cell, got {num_cells}")
        best: tuple[int, int] | None = None
        h = 1
        while h * h <= num_cells:
            if num_cells % h == 0:
                best = (num_cells // h, h)
            h += 1
        assert best is not None  # h=1 always divides
        return cls(width=best[0], height=best[1])

    @property
    def num_cells(self) -> int:
        return self.width * self.height

    def coordinates(self, cell_id: int) -> tuple[int, int]:
        """Return the (x, y) torus coordinates of ``cell_id``."""
        self._check_cell(cell_id)
        return cell_id % self.width, cell_id // self.width

    def cell_at(self, x: int, y: int) -> int:
        """Return the cell ID at torus coordinates (x, y), with wrap-around."""
        return (y % self.height) * self.width + (x % self.width)

    def distance(self, src: int, dst: int) -> int:
        """Hop count between two cells under dimension-order torus routing."""
        sx, sy = self.coordinates(src)
        dx, dy = self.coordinates(dst)
        return _ring_hops(sx, dx, self.width) + _ring_hops(sy, dy, self.height)

    def route(self, src: int, dst: int) -> list[int]:
        """The ordered list of cells a message visits from src to dst.

        Includes ``dst`` (when different from ``src``), excludes ``src``.
        Dimension order: resolve x first, then y.
        """
        sx, sy = self.coordinates(src)
        dx, dy = self.coordinates(dst)
        path = [self.cell_at(x, sy) for x in _ring_path(sx, dx, self.width)]
        path += [self.cell_at(dx, y) for y in _ring_path(sy, dy, self.height)]
        return path

    def neighbors(self, cell_id: int) -> list[int]:
        """The (up to four) distinct torus neighbours of a cell."""
        x, y = self.coordinates(cell_id)
        raw = [
            self.cell_at(x + 1, y),
            self.cell_at(x - 1, y),
            self.cell_at(x, y + 1),
            self.cell_at(x, y - 1),
        ]
        seen: list[int] = []
        for cell in raw:
            if cell != cell_id and cell not in seen:
                seen.append(cell)
        return seen

    def _check_cell(self, cell_id: int) -> None:
        if not 0 <= cell_id < self.num_cells:
            raise ConfigurationError(
                f"cell id {cell_id} out of range for "
                f"{self.num_cells}-cell torus"
            )
