"""Functional model of the S-net hardware barrier network.

The S-net is a dedicated synchronization network: every cell asserts a
"reached barrier" signal and the network reports back, to all cells at
once, when all of them have.  The hardware S-net synchronizes *all* cells;
barrier synchronization for a *group* of cells is done in software using
the communication registers (section 4.5), which is why the machine needs
both mechanisms.

The functional model is a counter per barrier "episode": cells arrive, and
the barrier fires when the arrival count reaches the machine size.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import CommunicationError


@dataclass
class SNet:
    """All-cells hardware barrier with episode counting."""

    num_cells: int
    _arrived: set[int] = field(default_factory=set)
    episodes_completed: int = 0

    def arrive(self, cell_id: int) -> bool:
        """Mark ``cell_id`` as arrived at the current barrier episode.

        Returns True when this arrival completes the barrier (at which
        point the episode resets and every cell is released).
        """
        if not 0 <= cell_id < self.num_cells:
            raise CommunicationError(f"invalid cell id {cell_id} for S-net")
        if cell_id in self._arrived:
            raise CommunicationError(
                f"cell {cell_id} arrived twice at the same S-net barrier; "
                "barriers on the S-net are strictly phase-ordered"
            )
        self._arrived.add(cell_id)
        if len(self._arrived) == self.num_cells:
            self._arrived.clear()
            self.episodes_completed += 1
            return True
        return False

    def waiting(self) -> frozenset[int]:
        """Cells that have arrived and are waiting for the episode to fire."""
        return frozenset(self._arrived)

    @property
    def arrived_count(self) -> int:
        return len(self._arrived)
