"""Send and receive DMA engines of the MSC+.

The send DMA controller moves 1 word to 1 megaword (4 bytes - 4 MB) per
operation, gathering one-dimensional strides on the way out; the receive
DMA scatters into the destination cell's memory.  The functional model
performs the copy against :class:`~repro.hardware.memory.CellMemory` and
keeps counters that the benchmarks use (operations, bytes, largest
transfer).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import CommunicationError
from repro.hardware.memory import CellMemory
from repro.network.packet import StrideSpec

#: Hardware limits of one DMA operation (section 4.1).
MIN_DMA_BYTES = 4
MAX_DMA_BYTES = 4 * 1024 * 1024


@dataclass
class DMAEngine:
    """One direction (send or receive) of the MSC+ DMA."""

    name: str
    operations: int = 0
    bytes_moved: int = 0
    largest_transfer: int = 0

    def _account(self, nbytes: int) -> None:
        if nbytes == 0:
            return
        if not MIN_DMA_BYTES <= nbytes <= MAX_DMA_BYTES:
            raise CommunicationError(
                f"{self.name} DMA transfer of {nbytes} bytes outside the "
                f"hardware range [{MIN_DMA_BYTES}, {MAX_DMA_BYTES}]"
            )
        self.operations += 1
        self.bytes_moved += nbytes
        self.largest_transfer = max(self.largest_transfer, nbytes)

    def snapshot(self) -> dict[str, int]:
        """Counter snapshot for the observability harvest."""
        return {
            "operations": self.operations,
            "bytes_moved": self.bytes_moved,
            "largest_transfer": self.largest_transfer,
        }

    def gather(self, memory: CellMemory, addr: int,
               stride: StrideSpec) -> bytes:
        """Read a (possibly strided) block out of memory as one payload."""
        data = memory.gather(addr, stride)
        self._account(len(data))
        return data

    def scatter(self, memory: CellMemory, addr: int, stride: StrideSpec,
                data: bytes) -> None:
        """Write one payload into memory with the receive-side stride."""
        self._account(len(data))
        memory.scatter(addr, stride, data)
