"""Hardware models of the AP1000+ cell: DRAM and address map, MMU/TLB,
write-through cache, communication registers, MSC+ command queues and DMA,
the MC memory controller, and the MSC+ message controller."""

from repro.hardware.cache import CACHE_BYTES, LINE_BYTES, WriteThroughCache
from repro.hardware.cell import DEFAULT_MEMORY_BYTES, HardwareCell
from repro.hardware.comm_registers import (
    NUM_REGISTERS,
    REGISTER_BYTES,
    CommRegisterFile,
)
from repro.hardware.dma import MAX_DMA_BYTES, MIN_DMA_BYTES, DMAEngine
from repro.hardware.mc import NO_FLAG, MemoryController, allocate_flag_area
from repro.hardware.memory import (
    PHYSICAL_SPACE_BYTES,
    SHARED_SPACE_BASE,
    WORD_BYTES,
    AddressMap,
    CellMemory,
)
from repro.hardware.mmu import (
    MMU,
    PAGE_4K,
    PAGE_256K,
    TLB_ENTRIES_4K,
    TLB_ENTRIES_256K,
    PageEntry,
)
from repro.hardware.msc import (
    PUT_COMMAND_WORDS,
    STRIDE_COMMAND_WORDS,
    Command,
    CommandKind,
    MSCPlus,
    MSCStats,
)
from repro.hardware.wtpage import (
    WT_PAGE_BYTES,
    PageBinding,
    WriteThroughPageTable,
)
from repro.hardware.queues import (
    COMMAND_WORDS,
    DEFAULT_SPILL_WORDS,
    QUEUE_WORDS,
    CommandQueue,
)

__all__ = [
    "CACHE_BYTES",
    "LINE_BYTES",
    "WriteThroughCache",
    "DEFAULT_MEMORY_BYTES",
    "HardwareCell",
    "NUM_REGISTERS",
    "REGISTER_BYTES",
    "CommRegisterFile",
    "MAX_DMA_BYTES",
    "MIN_DMA_BYTES",
    "DMAEngine",
    "NO_FLAG",
    "MemoryController",
    "allocate_flag_area",
    "PHYSICAL_SPACE_BYTES",
    "SHARED_SPACE_BASE",
    "WORD_BYTES",
    "AddressMap",
    "CellMemory",
    "MMU",
    "PAGE_4K",
    "PAGE_256K",
    "TLB_ENTRIES_4K",
    "TLB_ENTRIES_256K",
    "PageEntry",
    "PUT_COMMAND_WORDS",
    "STRIDE_COMMAND_WORDS",
    "Command",
    "CommandKind",
    "MSCPlus",
    "MSCStats",
    "COMMAND_WORDS",
    "DEFAULT_SPILL_WORDS",
    "QUEUE_WORDS",
    "CommandQueue",
    "WT_PAGE_BYTES",
    "PageBinding",
    "WriteThroughPageTable",
]
