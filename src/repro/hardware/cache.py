"""The cell's write-through processor cache.

Each cell's SuperSPARC has a 36-kilobyte write-through cache (Table 1).
Two properties of that cache matter to the PUT/GET architecture:

* Because the cache is *write-through*, memory always holds current data,
  so the MSC+ can DMA outgoing data straight from DRAM without asking the
  processor to post (flush) dirty lines — on the original AP1000 the
  software handler paid ``put_msg_post_time`` per byte for this.
* On message *reception* the MSC+ invalidates the cached copies of the
  written range in hardware, "at the time of message reception", so
  reception never interrupts the user program; the AP1000 again paid a
  per-byte software cost (``recv_msg_flush_time``).

The model is a direct-mapped tag store.  Functional data always lives in
DRAM (write-through means the cache never holds the only copy), so the
cache tracks *presence* only, which is exactly what invalidation needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import ConfigurationError

CACHE_BYTES = 36 * 1024
LINE_BYTES = 32


@dataclass
class WriteThroughCache:
    """Direct-mapped, write-through, write-no-allocate cache model."""

    size_bytes: int = CACHE_BYTES
    line_bytes: int = LINE_BYTES
    _tags: dict[int, int] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0
    write_throughs: int = 0
    invalidated_lines: int = 0

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0:
            raise ConfigurationError("cache and line sizes must be positive")
        if self.size_bytes % self.line_bytes:
            raise ConfigurationError(
                "cache size must be a multiple of line size")

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    def _index_tag(self, addr: int) -> tuple[int, int]:
        line = addr // self.line_bytes
        return line % self.num_lines, line

    def read(self, addr: int, size: int = 1) -> int:
        """Touch a read range; returns the number of missing lines loaded."""
        loaded = 0
        for line in self._lines(addr, size):
            index = line % self.num_lines
            if self._tags.get(index) == line:
                self.hits += 1
            else:
                self.misses += 1
                self._tags[index] = line
                loaded += 1
        return loaded

    def write(self, addr: int, size: int = 1) -> None:
        """Touch a write range: write-through (no allocate on miss)."""
        for line in self._lines(addr, size):
            index = line % self.num_lines
            if self._tags.get(index) == line:
                self.hits += 1
            else:
                self.misses += 1
        self.write_throughs += 1

    def invalidate_range(self, addr: int, size: int) -> int:
        """Invalidate every cached line overlapping [addr, addr+size).

        Returns the number of lines actually dropped.  A range at least as
        large as the cache clears the whole tag store in one step, keeping
        invalidation O(min(range, cache)) — the hardware walks its tag RAM
        the same way.
        """
        if size <= 0:
            return 0
        dropped = 0
        if size >= self.size_bytes:
            dropped = len(self._tags)
            self._tags.clear()
        else:
            for line in self._lines(addr, size):
                index = line % self.num_lines
                if self._tags.get(index) == line:
                    del self._tags[index]
                    dropped += 1
        self.invalidated_lines += dropped
        return dropped

    def contains(self, addr: int) -> bool:
        index, line = self._index_tag(addr)
        return self._tags.get(index) == line

    def flush(self) -> None:
        self._tags.clear()

    def _lines(self, addr: int, size: int) -> range:
        first = addr // self.line_bytes
        last = (addr + size - 1) // self.line_bytes
        return range(first, last + 1)
