"""Write-through pages: software-coherent caching of shared memory.

Section 4.2: "The AP1000+ supports so called write through page to
efficiently execute ... shared memory programming.  This mechanism uses
part of local memory as a cache for distributed shared memory space, and
enables the replacement of remote accesses with local accesses.  A more
detailed discussion of write through page is beyond the scope of this
paper."  The conclusion adds the design philosophy: "message passing
based machines with added software cache coherent ... have better
cost-performance than cache coherent based machines with added message
passing mechanisms."

This module reconstructs the mechanism from those constraints:

* a cell may **bind** a remote cell's shared page to a page-sized area
  of its own local memory (the local copy);
* **reads** of a bound page are served from the local copy — a remote
  access replaced by a local access;
* **writes** go through: the word is stored to the local copy *and* a
  remote store updates the home cell (hence "write-through page");
* coherence is **software-managed**: there is no hardware snooping
  between cells.  A cell whose copy may be stale calls
  :meth:`WriteThroughPageTable.refresh` (re-fetch from home), typically
  after a barrier — the same discipline the OVERLAP FIX / MOVEWAIT model
  uses for overlap areas.

Counters expose the claim being made: how many remote reads were
replaced by local ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import AddressError, ConfigurationError

#: Write-through pages use the MMU's small page size.
WT_PAGE_BYTES = 4 * 1024


@dataclass(frozen=True)
class PageBinding:
    """One bound page: (home cell, home page base) -> local copy base."""

    home_cell: int
    home_base: int
    local_base: int


@dataclass
class WriteThroughPageTable:
    """Per-cell table of write-through page bindings.

    The table is pure bookkeeping plus counters; the data movement (the
    initial fetch, the write-through stores, refreshes) is driven by the
    machine layer, which owns the communication paths.
    """

    page_bytes: int = WT_PAGE_BYTES
    _bindings: dict[tuple[int, int], PageBinding] = field(default_factory=dict)
    _by_local: dict[int, PageBinding] = field(default_factory=dict)
    local_reads: int = 0
    write_throughs: int = 0
    refreshes: int = 0
    faults: int = 0

    def bind(self, home_cell: int, home_base: int,
             local_base: int) -> PageBinding:
        """Install a binding.  Bases must be page-aligned and unique."""
        if home_base % self.page_bytes or local_base % self.page_bytes:
            raise AddressError(
                "write-through pages must be page-aligned "
                f"({self.page_bytes} bytes)")
        key = (home_cell, home_base)
        if key in self._bindings:
            raise ConfigurationError(
                f"page {home_base:#x} of cell {home_cell} already bound")
        if local_base in self._by_local:
            raise ConfigurationError(
                f"local page {local_base:#x} already backs another binding")
        binding = PageBinding(home_cell=home_cell, home_base=home_base,
                              local_base=local_base)
        self._bindings[key] = binding
        self._by_local[local_base] = binding
        return binding

    def unbind(self, home_cell: int, home_base: int) -> None:
        binding = self._bindings.pop((home_cell, home_base), None)
        if binding is None:
            raise ConfigurationError(
                f"page {home_base:#x} of cell {home_cell} is not bound")
        del self._by_local[binding.local_base]

    def lookup(self, home_cell: int, home_addr: int) -> PageBinding | None:
        """Find the binding covering a home-cell address, if any."""
        base = home_addr - home_addr % self.page_bytes
        return self._bindings.get((home_cell, base))

    def local_address(self, home_cell: int, home_addr: int) -> int | None:
        """Translate a home address into the local copy, or None (miss)."""
        binding = self.lookup(home_cell, home_addr)
        if binding is None:
            self.faults += 1
            return None
        return binding.local_base + (home_addr - binding.home_base)

    def note_local_read(self) -> None:
        self.local_reads += 1

    def note_write_through(self) -> None:
        self.write_throughs += 1

    def note_refresh(self) -> None:
        self.refreshes += 1

    def bindings(self) -> list[PageBinding]:
        return list(self._bindings.values())

    def __len__(self) -> int:
        return len(self._bindings)
