"""Per-cell DRAM and the machine-wide physical address map.

Each AP1000+ cell carries 16 or 64 megabytes of DRAM on SIMMs.  The
SuperSPARC's 36-bit physical address space (64 gigabytes) is split in half:
the lower 32 GB is the cell's *local* space, and the upper 32 GB is the
*distributed shared memory* space, divided into equal blocks, one per cell
(section 4.2).  A normal LOAD/STORE whose physical address falls in another
cell's block is turned into a remote load/store by the MSC+.

The reproduction backs each cell's DRAM with a numpy byte buffer, so
higher layers (the functional machine, the VPP Fortran runtime) can carve
numpy array views out of real simulated memory and every PUT/GET moves
actual bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import AddressError, ConfigurationError
from repro.network.packet import StrideSpec

#: Size of the full physical address space: 36 bits = 64 GB.
PHYSICAL_SPACE_BYTES = 1 << 36
#: The boundary between local space (below) and shared space (above).
SHARED_SPACE_BASE = 1 << 35
#: Word size used by flags and communication registers.
WORD_BYTES = 4


class CellMemory:
    """Byte-addressable DRAM of one cell."""

    def __init__(self, size_bytes: int) -> None:
        if size_bytes <= 0:
            raise ConfigurationError(
                f"memory size must be positive, got {size_bytes}")
        self._buf = np.zeros(size_bytes, dtype=np.uint8)
        self.size_bytes = size_bytes

    @property
    def buffer(self) -> np.ndarray:
        """The raw byte buffer (for carving out array views)."""
        return self._buf

    def _check_range(self, addr: int, size: int) -> None:
        if addr < 0 or size < 0 or addr + size > self.size_bytes:
            raise AddressError(
                f"access [{addr}, {addr + size}) outside "
                f"{self.size_bytes}-byte DRAM"
            )

    def read(self, addr: int, size: int) -> bytes:
        """Read ``size`` bytes starting at ``addr``."""
        self._check_range(addr, size)
        return self._buf[addr : addr + size].tobytes()

    def write(self, addr: int, data: bytes | np.ndarray) -> None:
        """Write ``data`` starting at ``addr``."""
        raw = (np.frombuffer(data, dtype=np.uint8)
               if isinstance(data, (bytes, bytearray)) else data)
        self._check_range(addr, len(raw))
        self._buf[addr : addr + len(raw)] = raw

    def read_word(self, addr: int) -> int:
        """Read a 4-byte little-endian word (used for flags)."""
        self._check_range(addr, WORD_BYTES)
        return int.from_bytes(self.read(addr, WORD_BYTES), "little")

    def write_word(self, addr: int, value: int) -> None:
        self._check_range(addr, WORD_BYTES)
        self.write(addr, (value % (1 << 32)).to_bytes(WORD_BYTES, "little"))

    def view(self, addr: int, size: int) -> np.ndarray:
        """A live uint8 view of a memory range (no copy)."""
        self._check_range(addr, size)
        return self._buf[addr : addr + size]

    def gather(self, addr: int, stride: StrideSpec) -> bytes:
        """Collect ``stride.count`` items into one contiguous payload."""
        self._check_range(addr, stride.extent_bytes)
        if stride.count <= 1 or stride.skip == stride.item_size:
            return self.read(addr, stride.total_bytes)
        parts = [
            self._buf[addr + off : addr + off + stride.item_size]
            for off in stride.offsets()
        ]
        return np.concatenate(parts).tobytes() if parts else b""

    def scatter(self, addr: int, stride: StrideSpec, data: bytes) -> None:
        """Spread a contiguous payload into ``stride``-spaced items."""
        if len(data) != stride.total_bytes:
            raise AddressError(
                f"scatter payload is {len(data)} bytes but stride describes "
                f"{stride.total_bytes}"
            )
        self._check_range(addr, stride.extent_bytes)
        if stride.count <= 1 or stride.skip == stride.item_size:
            self.write(addr, data)
            return
        raw = np.frombuffer(data, dtype=np.uint8)
        for i, off in enumerate(stride.offsets()):
            chunk = raw[i * stride.item_size : (i + 1) * stride.item_size]
            self._buf[addr + off : addr + off + stride.item_size] = chunk


@dataclass(frozen=True)
class AddressMap:
    """The machine-wide split of the 36-bit physical space.

    The shared half is divided into ``num_cells`` equal blocks.  Only the
    first ``shared_window_bytes`` of each block is backed by that cell's
    DRAM ("half of the local memory is mapped for shared space" in the
    64 MB / 1024-cell example of section 4.2).
    """

    num_cells: int
    memory_per_cell: int

    def __post_init__(self) -> None:
        if self.num_cells < 1:
            raise ConfigurationError("need at least one cell")
        if self.memory_per_cell < 2 * WORD_BYTES:
            raise ConfigurationError("cell memory too small")

    @property
    def block_size(self) -> int:
        """Size of one cell's slot in shared space."""
        return SHARED_SPACE_BASE // self.num_cells

    @property
    def shared_window_bytes(self) -> int:
        """How much of each cell's DRAM is exported into shared space."""
        return min(self.memory_per_cell // 2, self.block_size)

    def is_shared(self, paddr: int) -> bool:
        if not 0 <= paddr < PHYSICAL_SPACE_BYTES:
            raise AddressError(
                f"physical address {paddr:#x} outside 36-bit space")
        return paddr >= SHARED_SPACE_BASE

    def shared_base(self, cell_id: int) -> int:
        """Physical base address of ``cell_id``'s exported window."""
        if not 0 <= cell_id < self.num_cells:
            raise AddressError(
                f"no cell {cell_id} in {self.num_cells}-cell machine")
        return SHARED_SPACE_BASE + cell_id * self.block_size

    def resolve_shared(self, paddr: int) -> tuple[int, int]:
        """Map a shared-space physical address to (owner cell, local offset).

        This is the MSC+ translation of "the upper bits of physical
        addresses ... to destination cell IDs and the other bits to local
        addresses at the destination cell".
        """
        if not self.is_shared(paddr):
            raise AddressError(
                f"{paddr:#x} is in local space, not shared space")
        offset_in_shared = paddr - SHARED_SPACE_BASE
        cell_id = offset_in_shared // self.block_size
        local_offset = offset_in_shared % self.block_size
        if local_offset >= self.shared_window_bytes:
            raise AddressError(
                f"shared address {paddr:#x} beyond cell {cell_id}'s exported "
                f"window of {self.shared_window_bytes} bytes"
            )
        return cell_id, local_offset
