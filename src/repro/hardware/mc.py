"""The MC memory controller.

The MC sits between the SuperSPARC and DRAM on the V-Bus (Figure 5).  For
the PUT/GET architecture it contributes three things:

* an **MMU with its own TLB** that the MSC+ uses to translate the logical
  addresses carried in PUT/GET commands and packets;
* a **flag incrementer** — a fetch-and-increment unit the MSC+ invokes
  when a send or receive DMA completes, so flag update is combined with
  data transfer instead of needing a separate flag message;
* the cell's **communication registers** (section 4.4).

A flag is a normal user variable: its address is logical, the MC
translates it with its own MMU, and a flag address of 0 means "no flag"
(section 4.1, "Flag update combined with data transfer").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import AddressError
from repro.hardware.comm_registers import CommRegisterFile
from repro.hardware.memory import WORD_BYTES, CellMemory
from repro.hardware.mmu import MMU, PAGE_256K

#: Flag address 0 disables the flag update for that side of the transfer.
NO_FLAG = 0


@dataclass
class MemoryController:
    """One cell's MC: DRAM port, MMU, flag incrementer, comm registers."""

    memory: CellMemory
    mmu: MMU = field(default_factory=MMU)
    registers: CommRegisterFile = field(default_factory=CommRegisterFile)
    flag_increments: int = 0
    dram_reads: int = 0
    dram_writes: int = 0

    def identity_map(self) -> None:
        """Map exactly the DRAM logical==physical.

        Large (256 KB) pages cover the bulk, 4 KB pages the remainder, so
        the mapping ends exactly at the DRAM boundary: an access past it
        misses the page table and raises a proper page fault (the
        protection behaviour of section 4.1), rather than over-mapping
        into nonexistent memory.  The functional machine boots every cell
        this way; tests exercise non-trivial mappings explicitly.
        """
        from repro.hardware.mmu import PAGE_4K

        size = self.memory.size_bytes
        bulk = (size // PAGE_256K) * PAGE_256K
        if bulk:
            self.mmu.map_range(0, 0, bulk, page_size=PAGE_256K)
        if size > bulk:
            self.mmu.map_range(bulk, bulk, size - bulk, page_size=PAGE_4K)

    # ------------------------------------------------------------------
    # Translated DRAM access (used by the MSC+ DMA paths)
    # ------------------------------------------------------------------

    def translate(self, logical: int, size: int, *, write: bool) -> int:
        """Translate a logical range for a DMA, checking every page."""
        return self.mmu.translate_range(logical, size, write=write)

    def read(self, logical: int, size: int) -> bytes:
        paddr = self.translate(logical, size, write=False)
        self.dram_reads += 1
        return self.memory.read(paddr, size)

    def write(self, logical: int, data: bytes) -> None:
        paddr = self.translate(logical, len(data), write=True)
        self.dram_writes += 1
        self.memory.write(paddr, data)

    # ------------------------------------------------------------------
    # Flag incrementer ("fetch and increment", section 3.2)
    # ------------------------------------------------------------------

    def increment_flag(self, flag_logical_addr: int) -> int | None:
        """Fetch-and-increment the word at a logical flag address.

        Returns the *new* value, or ``None`` when the address is 0 (no
        flag requested).
        """
        if flag_logical_addr == NO_FLAG:
            return None
        paddr = self.mmu.translate(flag_logical_addr, write=True)
        value = self.memory.read_word(paddr) + 1
        self.memory.write_word(paddr, value)
        self.flag_increments += 1
        return value

    def read_flag(self, flag_logical_addr: int) -> int:
        """Read a flag's current value (the program's flag-check load)."""
        if flag_logical_addr == NO_FLAG:
            raise AddressError(
                "cannot read flag at address 0 (means 'no flag')")
        paddr = self.mmu.translate(flag_logical_addr, write=False)
        return self.memory.read_word(paddr)

    def write_flag(self, flag_logical_addr: int, value: int) -> None:
        """Reset a flag (programs clear flags between communication phases)."""
        if flag_logical_addr == NO_FLAG:
            raise AddressError(
                "cannot write flag at address 0 (means 'no flag')")
        paddr = self.mmu.translate(flag_logical_addr, write=True)
        self.memory.write_word(paddr, value)


def allocate_flag_area(mc: MemoryController, base: int,
                       count: int) -> list[int]:
    """Carve ``count`` word-sized flags out of memory starting at ``base``.

    Returns the logical addresses; flags start at zero.  Address 0 is never
    returned because it is the "no flag" sentinel, so ``base`` must be > 0.
    """
    if base <= 0:
        raise AddressError("flag area must start above address 0")
    addrs = [base + i * WORD_BYTES for i in range(count)]
    for addr in addrs:
        mc.write_flag(addr, 0)
    return addrs
