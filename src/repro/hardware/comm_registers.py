"""Communication registers with present bits (section 4.4).

Each MC carries 128 4-byte registers allocated in *shared* memory space, so
any cell can write another cell's registers with a plain remote store.
Every register has a present bit (p-bit): a store sets it, a load clears
it, and a load that finds the p-bit clear makes the processor retry in
hardware instead of software-polling.  The AP1000+ builds fast software
barriers and scalar global reductions out of these registers.

The functional model exposes a non-blocking ``try_load`` (returns ``None``
when empty) so the cooperative scheduler of :mod:`repro.machine` can turn
"hardware retry" into a block-until-present condition, plus counters for
how many retries the hardware would have performed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import AddressError

NUM_REGISTERS = 128
REGISTER_BYTES = 4


@dataclass
class CommRegisterFile:
    """One cell's 128-register communication register file."""

    num_registers: int = NUM_REGISTERS
    _values: list[int] = field(default_factory=list)
    _present: list[bool] = field(default_factory=list)
    stores: int = 0
    loads: int = 0
    retries: int = 0

    def __post_init__(self) -> None:
        if not self._values:
            self._values = [0] * self.num_registers
            self._present = [False] * self.num_registers

    def _check(self, index: int) -> None:
        if not 0 <= index < self.num_registers:
            raise AddressError(
                f"communication register {index} out of range "
                f"(file has {self.num_registers})"
            )

    def store(self, index: int, value: int) -> None:
        """Store a word and set the p-bit."""
        self._check(index)
        self._values[index] = value % (1 << (8 * REGISTER_BYTES))
        self._present[index] = True
        self.stores += 1

    def try_load(self, index: int) -> int | None:
        """Load a word if present (clearing the p-bit), else None.

        A ``None`` corresponds to one hardware retry cycle on the real
        machine; callers that busy-wait should call this until it yields a
        value, and the ``retries`` counter records the spin count.
        """
        self._check(index)
        if not self._present[index]:
            self.retries += 1
            return None
        self._present[index] = False
        self.loads += 1
        return self._values[index]

    def peek(self, index: int) -> tuple[int, bool]:
        """Inspect (value, p-bit) without disturbing them (debug/tests)."""
        self._check(index)
        return self._values[index], self._present[index]

    def is_present(self, index: int) -> bool:
        self._check(index)
        return self._present[index]

    def store_pair(self, index: int, low: int, high: int) -> None:
        """8-byte store: registers can be accessed in 4- or 8-byte blocks."""
        self._check(index + 1)
        self.store(index, low)
        self.store(index + 1, high)

    def try_load_pair(self, index: int) -> tuple[int, int] | None:
        """8-byte load; succeeds only when both p-bits are set."""
        self._check(index + 1)
        if not (self._present[index] and self._present[index + 1]):
            self.retries += 1
            return None
        low = self.try_load(index)
        high = self.try_load(index + 1)
        assert low is not None and high is not None
        return low, high
