"""MSC+ command queues with DRAM spill on overflow.

The MSC+ holds five queues in its own RAM (section 4.1):

* three *send* queues — user PUT/GET, system PUT/GET, and remote access —
  so that system use never has to save/restore user entries, and remote
  loads (which stall the processor) are privileged over PUT/GET; and
* two *reply* queues — GET replies and remote-load replies — with remote
  load replies preceding GET replies.

Each queue is at most 64 words.  When a queue fills, the MSC+ spills every
subsequently written word directly into a pre-allocated DRAM buffer; when
the queue drains, it interrupts the operating system, which reloads the
spilled words back into the queue.  If the DRAM buffer itself fills, the
OS is interrupted to allocate a new buffer.  The model counts both kinds
of interrupt so timing layers can charge them.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from repro.core.errors import QueueOverflowError

QUEUE_WORDS = 64
#: Default capacity of one spill buffer in DRAM, in words.
DEFAULT_SPILL_WORDS = 1024
#: PUT/GET commands are written as 8 words of parameters (section 4.1).
COMMAND_WORDS = 8


@dataclass
class CommandQueue:
    """A fixed-size word queue that spills to DRAM buffers on overflow.

    Entries are (command, word_count) pairs; occupancy is tracked in words
    because the hardware queue is sized in words (64), i.e. eight plain
    PUT/GET commands.
    """

    name: str
    capacity_words: int = QUEUE_WORDS
    spill_buffer_words: int = DEFAULT_SPILL_WORDS
    max_spill_buffers: int | None = None
    _queue: deque[tuple[Any, int]] = field(default_factory=deque)
    _spill: deque[tuple[Any, int]] = field(default_factory=deque)
    _queue_words: int = 0
    _spill_words: int = 0
    _spill_buffers_allocated: int = 1
    refill_interrupts: int = 0
    allocation_interrupts: int = 0
    pushed: int = 0
    popped: int = 0
    spilled: int = 0
    high_water_words: int = 0
    #: Observer invoked as ``on_spill(queue_name, words)`` every time a
    #: command streams past the hardware queue into DRAM.  The functional
    #: machine points this at its trace so spills become SPILL events.
    on_spill: Callable[[str, int], None] | None = None

    def push(self, command: Any, words: int = COMMAND_WORDS) -> None:
        """Enqueue a command of ``words`` parameter words.

        Once spilling has begun, *all* subsequent commands go to the DRAM
        buffer (the hardware streams post-overflow writes straight to
        DRAM) until a refill empties it, preserving FIFO order.
        """
        if words <= 0:
            raise QueueOverflowError("command must occupy at least one word")
        if self._spill or self._queue_words + words > self.capacity_words:
            self._spill_push(command, words)
        else:
            self._queue.append((command, words))
            self._queue_words += words
        self.pushed += 1
        self.high_water_words = max(
            self.high_water_words, self._queue_words + self._spill_words
        )

    def _spill_push(self, command: Any, words: int) -> None:
        capacity = self._spill_buffers_allocated * self.spill_buffer_words
        if self._spill_words + words > capacity:
            if (self.max_spill_buffers is not None
                    and (self._spill_buffers_allocated
                         >= self.max_spill_buffers)):
                raise QueueOverflowError(
                    f"queue '{self.name}': DRAM spill exhausted "
                    f"({self._spill_buffers_allocated} buffers of "
                    f"{self.spill_buffer_words} words)"
                )
            # The MSC+ interrupts the OS, which allocates a new buffer.
            self._spill_buffers_allocated += 1
            self.allocation_interrupts += 1
        self._spill.append((command, words))
        self._spill_words += words
        self.spilled += 1
        if self.on_spill is not None:
            self.on_spill(self.name, words)

    def pop(self) -> Any:
        """Dequeue the oldest command, refilling from the spill buffer."""
        if not self._queue:
            self._refill()
        if not self._queue:
            raise QueueOverflowError(f"queue '{self.name}' is empty")
        command, words = self._queue.popleft()
        self._queue_words -= words
        self.popped += 1
        if not self._queue and self._spill:
            self._refill()
        return command

    def _refill(self) -> None:
        """OS interrupt handler: move spilled words back into the queue."""
        if not self._spill:
            return
        self.refill_interrupts += 1
        while self._spill:
            command, words = self._spill[0]
            if self._queue_words + words > self.capacity_words:
                break
            self._spill.popleft()
            self._spill_words -= words
            self._queue.append((command, words))
            self._queue_words += words
        if not self._spill:
            self._spill_buffers_allocated = 1

    def __len__(self) -> int:
        return len(self._queue) + len(self._spill)

    def __bool__(self) -> bool:
        return bool(self._queue or self._spill)

    @property
    def words_in_queue(self) -> int:
        return self._queue_words

    @property
    def words_spilled(self) -> int:
        return self._spill_words

    def snapshot(self) -> dict[str, int]:
        """Counter snapshot for the observability harvest
        (:func:`repro.obs.observer.machine_metrics`)."""
        return {
            "pushed": self.pushed,
            "popped": self.popped,
            "spilled": self.spilled,
            "high_water_words": self.high_water_words,
            "refill_interrupts": self.refill_interrupts,
            "allocation_interrupts": self.allocation_interrupts,
            "words_in_queue": self.words_in_queue,
            "words_spilled": self.words_spilled,
        }

    def drain(self) -> list[Any]:
        """Pop everything (used by the functional machine's pump loop)."""
        out = []
        while self:
            out.append(self.pop())
        return out
