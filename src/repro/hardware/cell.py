"""Assembly of one AP1000+ cell (Figure 5).

A cell is a SuperSPARC (modelled abstractly — computation is charged by
the timing simulator, not executed cycle-by-cycle), DRAM behind the MC,
a write-through cache, and the MSC+ connecting the cell to the T-net.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.cache import WriteThroughCache
from repro.hardware.mc import MemoryController
from repro.hardware.memory import CellMemory
from repro.hardware.msc import MSCPlus
from repro.network.tnet import TNet

#: Default DRAM per cell used by the functional machine.  The real machine
#: ships 16 or 64 MB; the functional default is small because simulated
#: applications allocate only what they touch.
DEFAULT_MEMORY_BYTES = 16 * 1024 * 1024


@dataclass
class HardwareCell:
    """The hardware complement of one cell."""

    cell_id: int
    memory: CellMemory
    mc: MemoryController
    cache: WriteThroughCache
    msc: MSCPlus

    @classmethod
    def build(cls, cell_id: int, tnet: TNet,
              memory_bytes: int = DEFAULT_MEMORY_BYTES,
              *, identity_map: bool = True) -> "HardwareCell":
        """Construct a cell wired to ``tnet``.

        With ``identity_map`` the MC maps the whole DRAM logical==physical
        (how the functional machine boots); pass False to set up page
        tables explicitly in tests.
        """
        memory = CellMemory(memory_bytes)
        mc = MemoryController(memory)
        if identity_map:
            mc.identity_map()
        cache = WriteThroughCache()
        msc = MSCPlus(cell_id, mc, tnet, cache=cache)
        return cls(cell_id=cell_id, memory=memory, mc=mc, cache=cache, msc=msc)
