"""MMU and TLB of the memory controller (MC).

PUT/GET parameters carry *logical* addresses: "Using the MMU in the MC,
the MSC+ converts the logical address to a physical address.  The MC has a
translation lookaside buffer (TLB), which is direct-mapped and has 256
entries for every 4-kilobyte page and 64 entries for every 256-kilobyte
page" (section 4.1).  A PUT/GET naming an unmapped logical address raises a
page fault; if the fault happens in a *remote* cell mid-transfer, the MSC+
interrupts the OS and pulls the remaining message from the network.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import AddressError, PageFaultError, ProtectionError

PAGE_4K = 4 * 1024
PAGE_256K = 256 * 1024
TLB_ENTRIES_4K = 256
TLB_ENTRIES_256K = 64


@dataclass(frozen=True)
class PageEntry:
    """One page-table entry: logical page -> physical frame."""

    physical_base: int
    size: int  # PAGE_4K or PAGE_256K
    writable: bool = True


class _DirectMappedTLB:
    """A direct-mapped TLB for one page size."""

    def __init__(self, entries: int, page_size: int) -> None:
        self.entries = entries
        self.page_size = page_size
        self._slots: dict[int, tuple[int, PageEntry]] = {}
        self.hits = 0
        self.misses = 0

    def lookup(self, page_number: int) -> PageEntry | None:
        index = page_number % self.entries
        slot = self._slots.get(index)
        if slot is not None and slot[0] == page_number:
            self.hits += 1
            return slot[1]
        self.misses += 1
        return None

    def fill(self, page_number: int, entry: PageEntry) -> None:
        self._slots[page_number % self.entries] = (page_number, entry)

    def flush(self) -> None:
        self._slots.clear()


@dataclass
class MMU:
    """Page table plus the MC's two direct-mapped TLBs.

    The page table maps logical page numbers to :class:`PageEntry` values;
    a miss in both TLBs triggers a table walk (counted, so timing models
    can charge the walker), and a miss in the table raises
    :class:`PageFaultError`.
    """

    tlb_4k: _DirectMappedTLB = field(
        default_factory=lambda: _DirectMappedTLB(TLB_ENTRIES_4K, PAGE_4K)
    )
    tlb_256k: _DirectMappedTLB = field(
        default_factory=lambda: _DirectMappedTLB(TLB_ENTRIES_256K, PAGE_256K)
    )
    _table_4k: dict[int, PageEntry] = field(default_factory=dict)
    _table_256k: dict[int, PageEntry] = field(default_factory=dict)
    walks: int = 0
    faults: int = 0

    def map_page(self, logical_base: int, physical_base: int,
                 size: int = PAGE_4K, writable: bool = True) -> None:
        """Install one page mapping.  ``logical_base`` must be page-aligned."""
        if size not in (PAGE_4K, PAGE_256K):
            raise AddressError(f"unsupported page size {size}")
        if logical_base % size or physical_base % size:
            raise AddressError("page bases must be aligned to the page size")
        entry = PageEntry(physical_base=physical_base, size=size,
                          writable=writable)
        table = self._table_4k if size == PAGE_4K else self._table_256k
        table[logical_base // size] = entry

    def map_range(self, logical_base: int, physical_base: int, size: int,
                  page_size: int = PAGE_4K, writable: bool = True) -> None:
        """Identity-shaped mapping of a whole range with one page size."""
        if size <= 0:
            raise AddressError("mapped range must be non-empty")
        start = (logical_base // page_size) * page_size
        end = logical_base + size
        offset = physical_base - logical_base
        page = start
        while page < end:
            self.map_page(page, page + offset, size=page_size,
                          writable=writable)
            page += page_size

    def unmap_page(self, logical_base: int, size: int = PAGE_4K) -> None:
        table = self._table_4k if size == PAGE_4K else self._table_256k
        table.pop(logical_base // size, None)
        tlb = self.tlb_4k if size == PAGE_4K else self.tlb_256k
        tlb.flush()

    def translate(self, logical: int, *, write: bool = False) -> int:
        """Translate one logical address, filling the TLB on a walk."""
        entry = self._lookup(logical)
        if write and not entry.writable:
            raise ProtectionError(f"write to read-only page at {logical:#x}")
        page_size = entry.size
        return entry.physical_base + (logical % page_size)

    def translate_range(self, logical: int, size: int, *,
                        write: bool = False) -> int:
        """Translate a range, verifying every touched page is mapped.

        Returns the physical address of the first byte.  This models the
        MSC+ checking DMA parameters for illegal addresses *in hardware*
        because user-level command issue bypasses the operating system
        (section 3.2).
        """
        if size < 0:
            raise AddressError("negative range size")
        first = self.translate(logical, write=write)
        if size == 0:
            return first
        probe = (logical // PAGE_4K + 1) * PAGE_4K
        end = logical + size
        while probe < end:
            self.translate(probe, write=write)
            probe += PAGE_4K
        return first

    def _lookup(self, logical: int) -> PageEntry:
        if logical < 0:
            self.faults += 1
            raise PageFaultError(f"negative logical address {logical:#x}")
        hit = self.tlb_4k.lookup(logical // PAGE_4K)
        if hit is not None:
            return hit
        hit = self.tlb_256k.lookup(logical // PAGE_256K)
        if hit is not None:
            return hit
        # TLB miss: hardware walker searches the page tables.
        self.walks += 1
        entry = self._table_4k.get(logical // PAGE_4K)
        if entry is not None:
            self.tlb_4k.fill(logical // PAGE_4K, entry)
            return entry
        entry = self._table_256k.get(logical // PAGE_256K)
        if entry is not None:
            self.tlb_256k.fill(logical // PAGE_256K, entry)
            return entry
        self.faults += 1
        raise PageFaultError(f"no mapping for logical address {logical:#x}")

    @property
    def tlb_hits(self) -> int:
        return self.tlb_4k.hits + self.tlb_256k.hits

    @property
    def tlb_misses(self) -> int:
        return self.tlb_4k.misses + self.tlb_256k.misses
