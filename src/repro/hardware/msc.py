"""The MSC+ message controller — the heart of the AP1000+ PUT/GET hardware.

The MSC+ interfaces the cell to the T-net and implements, without any
processor involvement (section 4.1):

* the **user-level command interface**: a program issues a PUT/GET by
  writing 8 parameter words to a special address; once the last word
  lands, the MSC+ activates the send DMA — the whole software cost is
  eight store instructions;
* **five queues** (user send, system send, remote access, GET reply,
  remote-load reply) with automatic spill to DRAM on overflow;
* the **send controller** that pops commands, gathers (optionally strided)
  data via send DMA, injects the packet, and asks the MC to increment the
  send flag at DMA completion;
* the **receive controller** that parses arriving headers, scatters data
  via receive DMA, invalidates the cached copies of the written range, and
  increments the receive flag — and that *automatically answers GET
  requests* from the reply queue;
* the translation of shared-space physical addresses into remote
  load/store packets (section 4.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.errors import CommunicationError, PageFaultError
from repro.hardware.cache import WriteThroughCache
from repro.hardware.dma import DMAEngine
from repro.hardware.mc import NO_FLAG, MemoryController
from repro.hardware.queues import COMMAND_WORDS, CommandQueue
from repro.network.packet import Packet, PacketKind, StrideSpec
from repro.network.tnet import TNet

#: Word count of a plain PUT/GET command (8 parameter stores).
PUT_COMMAND_WORDS = COMMAND_WORDS
#: Stride commands carry six extra parameters (item/cnt/skip for each side).
STRIDE_COMMAND_WORDS = COMMAND_WORDS + 4


class CommandKind(enum.Enum):
    PUT = "put"
    GET = "get"
    REMOTE_LOAD = "remote_load"
    REMOTE_STORE = "remote_store"


@dataclass(frozen=True)
class Command:
    """One entry in an MSC+ send queue."""

    kind: CommandKind
    dst: int
    raddr: int
    laddr: int
    send_stride: StrideSpec
    recv_stride: StrideSpec
    send_flag: int = NO_FLAG
    recv_flag: int = NO_FLAG
    ack: bool = False
    context: int = 0

    @property
    def words(self) -> int:
        plain = (self.send_stride.count <= 1 and self.recv_stride.count <= 1)
        return PUT_COMMAND_WORDS if plain else STRIDE_COMMAND_WORDS


@dataclass
class MSCStats:
    puts_sent: int = 0
    gets_sent: int = 0
    get_replies_sent: int = 0
    sends_sent: int = 0
    puts_received: int = 0
    get_requests_received: int = 0
    get_replies_received: int = 0
    sends_received: int = 0
    remote_loads: int = 0
    remote_stores: int = 0
    faults_pulled: int = 0


class MSCPlus:
    """Message controller of one cell."""

    def __init__(self, cell_id: int, mc: MemoryController, tnet: TNet,
                 cache: WriteThroughCache | None = None) -> None:
        self.cell_id = cell_id
        self.mc = mc
        self.tnet = tnet
        self.cache = cache
        self.user_send_queue = CommandQueue("user-send")
        self.system_send_queue = CommandQueue("system-send")
        self.remote_access_queue = CommandQueue("remote-access")
        self.get_reply_queue = CommandQueue("get-reply")
        self.remote_load_reply_queue = CommandQueue("remote-load-reply")
        self.send_dma = DMAEngine("send")
        self.recv_dma = DMAEngine("recv")
        self.stats = MSCStats()
        #: Implicit per-cell acknowledge counter for remote stores.
        self.remote_store_acks = 0
        #: Where SEND packets are deposited (set by the cell: a ring buffer).
        self.send_sink = None
        #: Remote-load replies awaiting pickup by the stalled processor.
        self._load_replies: list[Packet] = []

    def all_queues(self) -> tuple[CommandQueue, ...]:
        """The five hardware queues, in section 4.1 order."""
        return (self.user_send_queue, self.system_send_queue,
                self.remote_access_queue, self.get_reply_queue,
                self.remote_load_reply_queue)

    def queued_words(self) -> int:
        """Current occupancy (queue RAM + DRAM spill) across all queues."""
        return sum(q.words_in_queue + q.words_spilled
                   for q in self.all_queues())

    # ------------------------------------------------------------------
    # Command issue (user writes 8 parameter words; the queue is the
    # special address window)
    # ------------------------------------------------------------------

    def issue(self, command: Command, *, system: bool = False) -> None:
        """Issue a PUT/GET command at user (or system) level."""
        if command.kind in (CommandKind.REMOTE_LOAD, CommandKind.REMOTE_STORE):
            self.remote_access_queue.push(command, command.words)
        elif system:
            self.system_send_queue.push(command, command.words)
        else:
            self.user_send_queue.push(command, command.words)

    # ------------------------------------------------------------------
    # Send controller
    # ------------------------------------------------------------------

    def pump_send(self) -> int:
        """Process every queued send-side command.  Returns #packets sent.

        Queue priority: remote access first (the processor is stalled on
        remote loads), then system, then user; GET replies are sent from
        :meth:`pump_replies`.
        """
        sent = 0
        for queue in (self.remote_access_queue, self.system_send_queue,
                      self.user_send_queue):
            while queue:
                self._execute(queue.pop())
                sent += 1
        return sent

    def _execute(self, command: Command) -> None:
        if command.kind is CommandKind.PUT:
            self._send_put(command)
        elif command.kind is CommandKind.GET:
            self._send_get(command)
        elif command.kind is CommandKind.REMOTE_STORE:
            self._send_remote_store(command)
        elif command.kind is CommandKind.REMOTE_LOAD:
            self._send_remote_load(command)
        else:  # pragma: no cover - enum is exhaustive
            raise CommunicationError(f"unknown command kind {command.kind}")

    def _gather_payload(self, command: Command) -> bytes:
        paddr = self.mc.translate(
            command.laddr, command.send_stride.extent_bytes, write=False)
        return self.send_dma.gather(self.mc.memory, paddr, command.send_stride)

    def _send_put(self, command: Command) -> None:
        data = self._gather_payload(command)
        stride = command.recv_stride.count > 1 or command.send_stride.count > 1
        packet = Packet(
            kind=PacketKind.PUT_STRIDE if stride else PacketKind.PUT,
            src=self.cell_id, dst=command.dst,
            payload_bytes=len(data), data=data,
            remote_addr=command.raddr,
            recv_flag=command.recv_flag,
            recv_stride=command.recv_stride,
            context=command.context,
        )
        self.tnet.inject(packet)
        self.stats.puts_sent += 1
        # Send DMA complete: combined flag update on the sending side.
        self.mc.increment_flag(command.send_flag)

    def _send_get(self, command: Command) -> None:
        packet = Packet(
            kind=PacketKind.GET_REQUEST,
            src=self.cell_id, dst=command.dst,
            payload_bytes=0,
            remote_addr=command.raddr, local_addr=command.laddr,
            recv_flag=command.recv_flag,
            send_stride=command.send_stride,  # remote-side gather layout
            recv_stride=command.recv_stride,  # local scatter layout
            context=command.context,
        )
        self.tnet.inject(packet)
        self.stats.gets_sent += 1
        # The GET request itself has left: sending-side flag updates now.
        self.mc.increment_flag(command.send_flag)

    def send_message(self, dst: int, data: bytes, *, context: int = 0,
                     send_flag: int = NO_FLAG) -> Packet:
        """SEND (two-sided model): same hardware as PUT, but the packet is
        addressed to the destination's ring buffer rather than a specific
        remote address (section 4.3).  Returns the injected packet so the
        probe layer can record its serial for SEND/RECEIVE matching."""
        packet = Packet(
            kind=PacketKind.SEND, src=self.cell_id, dst=dst,
            payload_bytes=len(data), data=data, context=context,
        )
        self.tnet.inject(packet)
        self.stats.sends_sent += 1
        self.mc.increment_flag(send_flag)
        return packet

    def _send_remote_store(self, command: Command) -> None:
        data = self._gather_payload(command)
        self.tnet.inject(Packet(
            kind=PacketKind.REMOTE_STORE, src=self.cell_id, dst=command.dst,
            payload_bytes=len(data), data=data, remote_addr=command.raddr,
        ))
        self.stats.remote_stores += 1

    def _send_remote_load(self, command: Command) -> None:
        self.tnet.inject(Packet(
            kind=PacketKind.REMOTE_LOAD, src=self.cell_id, dst=command.dst,
            payload_bytes=0, remote_addr=command.raddr,
            local_addr=command.laddr,
            send_stride=command.send_stride,
        ))
        self.stats.remote_loads += 1

    # ------------------------------------------------------------------
    # Receive controller
    # ------------------------------------------------------------------

    def deliver(self, packet: Packet) -> None:
        """Handle one packet arriving from the T-net."""
        if packet.dst != self.cell_id:
            raise CommunicationError(
                f"packet for cell {packet.dst} delivered to cell "
                f"{self.cell_id}")
        kind = packet.kind
        if kind in (PacketKind.PUT, PacketKind.PUT_STRIDE):
            self._receive_put(packet)
        elif kind is PacketKind.GET_REQUEST:
            self.stats.get_requests_received += 1
            self.get_reply_queue.push(packet, PUT_COMMAND_WORDS)
        elif kind is PacketKind.GET_REPLY:
            self._receive_get_reply(packet)
        elif kind is PacketKind.SEND:
            self._receive_send(packet)
        elif kind is PacketKind.REMOTE_STORE:
            self._receive_remote_store(packet)
        elif kind is PacketKind.REMOTE_STORE_ACK:
            self.remote_store_acks += 1
        elif kind is PacketKind.REMOTE_LOAD:
            self.remote_load_reply_queue.push(packet, PUT_COMMAND_WORDS)
        elif kind is PacketKind.REMOTE_LOAD_REPLY:
            self._load_replies.append(packet)
        else:
            raise CommunicationError(f"cell {self.cell_id}: unroutable {kind}")

    def _scatter_with_invalidate(self, laddr: int, stride: StrideSpec,
                                 data: bytes) -> None:
        try:
            paddr = self.mc.translate(laddr, stride.extent_bytes, write=True)
        except PageFaultError:
            # Page fault in a remote cell during transfer: interrupt the OS
            # and pull the remaining message from the network (section 4.1).
            self.stats.faults_pulled += 1
            raise
        self.recv_dma.scatter(self.mc.memory, paddr, stride, data)
        # Cache invalidation happens at message reception, in hardware.
        if self.cache is not None:
            self.cache.invalidate_range(paddr, stride.extent_bytes)

    def _receive_put(self, packet: Packet) -> None:
        stride = (packet.recv_stride
                  or StrideSpec.contiguous(packet.payload_bytes))
        assert packet.data is not None
        self._scatter_with_invalidate(packet.remote_addr, stride, packet.data)
        self.stats.puts_received += 1
        # Receive DMA complete: combined flag update on the receiving side.
        self.mc.increment_flag(packet.recv_flag)

    def _receive_get_reply(self, packet: Packet) -> None:
        stride = (packet.recv_stride
                  or StrideSpec.contiguous(packet.payload_bytes))
        if packet.payload_bytes:
            assert packet.data is not None
            self._scatter_with_invalidate(packet.remote_addr, stride,
                                          packet.data)
        self.stats.get_replies_received += 1
        self.mc.increment_flag(packet.recv_flag)

    def _receive_send(self, packet: Packet) -> None:
        self.stats.sends_received += 1
        if self.send_sink is None:
            raise CommunicationError(
                f"cell {self.cell_id} received SEND but has no ring buffer")
        self.send_sink(packet)

    def _receive_remote_store(self, packet: Packet) -> None:
        assert packet.data is not None
        self._scatter_with_invalidate(
            packet.remote_addr, StrideSpec.contiguous(len(packet.data)),
            packet.data)
        # Completion of a remote store is acknowledged automatically.
        self.tnet.inject(Packet(
            kind=PacketKind.REMOTE_STORE_ACK, src=self.cell_id,
            dst=packet.src, payload_bytes=0))

    # ------------------------------------------------------------------
    # Reply controller (GET requests answered without the processor)
    # ------------------------------------------------------------------

    def pump_replies(self) -> int:
        """Serve queued GET requests and remote loads; returns #replies.

        Remote-load replies precede GET replies (the requesting processor
        is stalled on a remote load).
        """
        sent = 0
        while self.remote_load_reply_queue:
            self._reply_remote_load(self.remote_load_reply_queue.pop())
            sent += 1
        while self.get_reply_queue:
            self._reply_get(self.get_reply_queue.pop())
            sent += 1
        return sent

    def _reply_get(self, request: Packet) -> None:
        if request.remote_addr == 0:
            # Acknowledge idiom: GET to address 0 copies nothing; the reply
            # merely increments the requester's flag (section 4.1).
            data = b""
            stride = StrideSpec.contiguous(0)
        else:
            gather = request.send_stride or StrideSpec.contiguous(0)
            paddr = self.mc.translate(
                request.remote_addr, gather.extent_bytes, write=False)
            data = self.send_dma.gather(self.mc.memory, paddr, gather)
            stride = request.recv_stride or StrideSpec.contiguous(len(data))
        self.tnet.inject(Packet(
            kind=PacketKind.GET_REPLY, src=self.cell_id, dst=request.src,
            payload_bytes=len(data), data=data,
            remote_addr=request.local_addr,  # requester's landing address
            recv_flag=request.recv_flag,
            recv_stride=stride,
            context=request.context,
        ))
        self.stats.get_replies_sent += 1

    def _reply_remote_load(self, request: Packet) -> None:
        size = request.send_stride.total_bytes if request.send_stride else 4
        paddr = self.mc.translate(request.remote_addr, size, write=False)
        data = self.mc.memory.read(paddr, size)
        self.tnet.inject(Packet(
            kind=PacketKind.REMOTE_LOAD_REPLY, src=self.cell_id,
            dst=request.src, payload_bytes=len(data), data=data,
            remote_addr=request.local_addr))

    def take_load_reply(self) -> Packet | None:
        """Pop a pending remote-load reply (the stalled processor resumes)."""
        if self._load_replies:
            return self._load_replies.pop(0)
        return None
