"""Reliable link layer over the faulty T-net.

When a fault plan is active, every MSC+ packet becomes a *frame*: it is
stamped with a per-(src, dst)-flow sequence number and a CRC32 covering
header and payload, and a pristine copy is parked in a retransmit buffer
until the receiver's cumulative ``LINK_ACK`` covers it.  The receive side
verifies the checksum (answering ``LINK_NACK`` on corruption), discards
duplicates, and resequences out-of-order frames so that the upper layers
still observe the per-flow FIFO order the paper's acknowledge idiom
(GET-after-PUT, section 4.1) is built on.  Exactly-once delivery also
protects the flag counters: a duplicated PUT must not increment its
receive flag twice.

Retransmission is driven by the functional machine's pump loop: when the
wire is quiescent but frames remain unacknowledged, the machine ticks the
transport; after ``plan.timeout_rounds`` ticks everything outstanding is
resent (and recorded as TIMEOUT/RETRY trace events).  A frame that
exhausts ``plan.max_retries`` raises
:class:`~repro.core.errors.CommTimeoutError` with the machine's
blocked-cell dump attached — recovery either succeeds inside the pump
(preserving the quiescence-at-issue property the happens-before checker
relies on) or fails loudly; it never hangs.

Killed cells: frames toward a dead cell fall off the wire.  Under
``plan.degrade`` the transport acknowledges them locally (the sender
moves on and collectives shrink); otherwise they burn their retry budget
and surface as a structured timeout.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.errors import CommTimeoutError
from repro.faults.injector import FaultyTNet
from repro.faults.plan import FaultPlan
from repro.network.packet import Packet, PacketKind, link_checksum
from repro.trace.events import EventKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.machine import Machine

Flow = tuple[int, int]


class ReliableTransport:
    """Sequence numbers, checksums, acks, and retransmission."""

    def __init__(self, tnet: FaultyTNet, plan: FaultPlan,
                 machine: "Machine") -> None:
        self.tnet = tnet
        self.plan = plan
        self.machine = machine
        self.stats = tnet.stats
        # sender side
        self._next_seq: dict[Flow, int] = {}
        self._unacked: dict[Flow, dict[int, Packet]] = {}
        self._retry_count: dict[tuple[Flow, int], int] = {}
        self._ticks = 0
        # receiver side
        self._expected: dict[Flow, int] = {}
        self._reorder: dict[Flow, dict[int, Packet]] = {}
        #: Last gap sequence NACKed per flow, so a burst of out-of-order
        #: arrivals asks for one fast retransmit, not one per arrival.
        self._gap_nacked: dict[Flow, int] = {}

    # ------------------------------------------------------------------
    # Sender side
    # ------------------------------------------------------------------

    def outbound(self, packet: Packet) -> None:
        """Frame a data packet and cross the wire once."""
        flow = (packet.src, packet.dst)
        if packet.dst in self.tnet.killed and self.plan.degrade:
            # Degradation: traffic toward a dead cell is discarded at the
            # source, acknowledged implicitly.
            self.stats.degraded_discards += 1
            return
        seq = self._next_seq.get(flow, 0)
        self._next_seq[flow] = seq + 1
        packet.link_seq = seq
        packet.checksum = link_checksum(packet)
        self._unacked.setdefault(flow, {})[seq] = packet
        self.tnet.transmit(packet)

    def idle(self) -> bool:
        """True when every framed packet has been acknowledged."""
        return not any(self._unacked.values())

    def tick(self) -> None:
        """One quiescent pump round passed with frames outstanding.

        After ``timeout_rounds`` ticks, retransmit everything unacked;
        a frame beyond its retry budget raises CommTimeoutError."""
        self._ticks += 1
        if self._ticks < self.plan.timeout_rounds:
            return
        self._ticks = 0
        self.stats.timeouts += 1
        for flow, frames in self._unacked.items():
            if not frames:
                continue
            self._record(EventKind.TIMEOUT, pe=flow[0], partner=flow[1],
                         count=len(frames))
            for seq in sorted(frames):
                self._retransmit(flow, seq, frames[seq])

    def _retransmit(self, flow: Flow, seq: int, frame: Packet) -> None:
        key = (flow, seq)
        retries = self._retry_count.get(key, 0) + 1
        self._retry_count[key] = retries
        if retries > self.plan.max_retries:
            raise CommTimeoutError(self._give_up_report(flow, seq, frame))
        self.stats.retries += 1
        self._record(EventKind.RETRY, pe=flow[0], partner=flow[1],
                     count=retries)
        self.tnet.transmit(frame)

    def _give_up_report(self, flow: Flow, seq: int, frame: Packet) -> str:
        src, dst = flow
        lines = [
            f"reliable delivery gave up: frame {seq} of flow "
            f"{src} -> {dst} ({frame.kind.value}, "
            f"{frame.payload_bytes} payload bytes) unacknowledged after "
            f"{self.plan.max_retries} retransmissions"
        ]
        if dst in self.tnet.killed:
            lines.append(
                f"  cell {dst} was killed by fault plan "
                f"{self.plan.name!r} (degradation mode off)")
        lines.append(
            f"  transport: {self.stats.retries} retries, "
            f"{self.stats.timeouts} timeouts, "
            f"{sum(len(f) for f in self._unacked.values())} frames "
            "outstanding")
        lines.append(self.machine._deadlock_report(None))
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Receiver side
    # ------------------------------------------------------------------

    def receive(self, packet: Packet) -> list[Packet]:
        """Filter one wire arrival; returns the frames (in per-flow FIFO
        order) that may be delivered to the MSC+."""
        kind = packet.kind
        if kind is PacketKind.LINK_ACK:
            self._handle_ack(packet)
            return []
        if kind is PacketKind.LINK_NACK:
            self._handle_nack(packet)
            return []
        if packet.link_seq < 0:
            # Unframed packet (injected before the transport was wired,
            # e.g. by a test poking the raw network): pass through.
            return [packet]
        if packet.dst in self.tnet.killed:
            if self.plan.degrade:
                self.stats.degraded_discards += 1
                self._send_ack((packet.src, packet.dst))
            return []
        if link_checksum(packet) != packet.checksum:
            self.stats.corrupt_discarded += 1
            self._send_control(PacketKind.LINK_NACK, flow_src=packet.src,
                               flow_dst=packet.dst, seq=packet.link_seq)
            return []
        flow = (packet.src, packet.dst)
        expected = self._expected.get(flow, 0)
        if packet.link_seq < expected:
            # Old duplicate (retransmission raced its own ack): discard
            # and re-ack so the sender stops retrying.
            self.stats.dup_discarded += 1
            self._send_ack(flow)
            return []
        buffer = self._reorder.setdefault(flow, {})
        if packet.link_seq > expected:
            # A gap: a delayed or dropped frame is still missing.  Hold
            # this one and ask for the missing frame once per gap.
            if packet.link_seq in buffer:
                self.stats.dup_discarded += 1
            else:
                buffer[packet.link_seq] = packet
                self.stats.reordered += 1
            if self._gap_nacked.get(flow) != expected:
                self._gap_nacked[flow] = expected
                self._send_control(PacketKind.LINK_NACK, flow_src=flow[0],
                                   flow_dst=flow[1], seq=expected)
            return []
        ready = [packet]
        expected += 1
        while expected in buffer:
            ready.append(buffer.pop(expected))
            expected += 1
        self._expected[flow] = expected
        self._send_ack(flow)
        return ready

    def _handle_ack(self, packet: Packet) -> None:
        if link_checksum(packet) != packet.checksum:
            return  # corrupted control frame; the data timeout recovers
        flow = (packet.dst, packet.src)  # ack travels receiver -> sender
        cumulative = packet.link_seq
        frames = self._unacked.get(flow)
        if not frames:
            return
        for seq in [s for s in frames if s <= cumulative]:
            del frames[seq]
            self._retry_count.pop((flow, seq), None)

    def _handle_nack(self, packet: Packet) -> None:
        if link_checksum(packet) != packet.checksum:
            return
        flow = (packet.dst, packet.src)
        seq = packet.link_seq
        frame = self._unacked.get(flow, {}).get(seq)
        if frame is not None:
            self._retransmit(flow, seq, frame)

    def _send_ack(self, flow: Flow) -> None:
        expected = self._expected.get(flow, 0)
        self.stats.acks_sent += 1
        self._send_control(PacketKind.LINK_ACK, flow_src=flow[0],
                           flow_dst=flow[1], seq=expected - 1)

    def _send_control(self, kind: PacketKind, *, flow_src: int,
                      flow_dst: int, seq: int) -> None:
        """Emit a control frame from the flow's receiver to its sender.

        Control frames ride the same faulty wire (they can be dropped,
        delayed, or corrupted too) but are consumed by the transport and
        never reach an MSC+."""
        if kind is PacketKind.LINK_NACK:
            self.stats.nacks_sent += 1
        control = Packet(kind=kind, src=flow_dst, dst=flow_src,
                         payload_bytes=0, link_seq=seq)
        control.checksum = link_checksum(control)
        self.tnet.transmit(control)

    # ------------------------------------------------------------------
    # Checkpoint round-trip (repro.ckpt)
    # ------------------------------------------------------------------

    def state(self) -> dict:
        """Picklable link-layer state for a machine snapshot.

        Captures both sides of every flow — sequence counters, the
        retransmit buffers with their per-frame retry counts, the tick
        countdown, and the receiver's resequencing window — so a restore
        mid-retry-storm resumes the exact storm.
        """
        return {
            "next_seq": dict(self._next_seq),
            "unacked": {flow: dict(frames)
                        for flow, frames in self._unacked.items()},
            "retry_count": dict(self._retry_count),
            "ticks": self._ticks,
            "expected": dict(self._expected),
            "reorder": {flow: dict(frames)
                        for flow, frames in self._reorder.items()},
            "gap_nacked": dict(self._gap_nacked),
        }

    def load_state(self, saved: dict) -> None:
        """Restore the link layer from :meth:`state`'s dict."""
        self._next_seq = dict(saved["next_seq"])
        self._unacked = {tuple(flow): dict(frames)
                         for flow, frames in saved["unacked"].items()}
        self._retry_count = {(tuple(flow), seq): count
                             for (flow, seq), count
                             in saved["retry_count"].items()}
        self._ticks = saved["ticks"]
        self._expected = dict(saved["expected"])
        self._reorder = {tuple(flow): dict(frames)
                         for flow, frames in saved["reorder"].items()}
        self._gap_nacked = dict(saved["gap_nacked"])

    # ------------------------------------------------------------------
    # Cell death
    # ------------------------------------------------------------------

    def on_kill(self, pe: int) -> None:
        """Purge link state involving a killed cell.

        Under degradation, frames toward the dead cell are acknowledged
        locally; otherwise they stay in the retransmit buffer and burn
        their budget into a CommTimeoutError."""
        for flow in list(self._reorder):
            if pe in flow:
                self._reorder.pop(flow, None)
        if not self.plan.degrade:
            return
        for flow, frames in self._unacked.items():
            if flow[1] != pe:
                continue
            self.stats.degraded_discards += len(frames)
            for seq in list(frames):
                del frames[seq]
                self._retry_count.pop((flow, seq), None)

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------

    def _record(self, kind: EventKind, *, pe: int, partner: int,
                count: int) -> None:
        self.machine.record_robustness_event(kind, pe=pe, partner=partner,
                                             count=count)
