"""Fault injection, reliable delivery, and chaos testing for the fabric.

Layers (bottom up):

* :mod:`repro.faults.plan` — declarative, seeded :class:`FaultPlan`
  schedules (what goes wrong, and the recovery budget);
* :mod:`repro.faults.injector` — :class:`FaultyTNet` / :class:`FaultyBNet`
  wire wrappers that misbehave on schedule;
* :mod:`repro.faults.transport` — :class:`ReliableTransport`, the
  sequence-number/checksum/ack/retransmit layer that makes the faulty
  wire deliver exactly-once, in per-flow order, or fail loudly;
* :mod:`repro.faults.chaos` — the sweep harness behind ``repro chaos``
  (imported lazily by the CLI, not here: chaos pulls in the application
  suite, which would cycle back into the machine).
"""

from repro.faults.injector import FaultStats, FaultyBNet, FaultyTNet
from repro.faults.plan import (
    FaultPlan,
    KillSpec,
    StallSpec,
    active_plan,
    applied,
    full_plans,
    smoke_plans,
)
from repro.faults.transport import ReliableTransport

__all__ = [
    "FaultPlan",
    "KillSpec",
    "StallSpec",
    "active_plan",
    "applied",
    "full_plans",
    "smoke_plans",
    "FaultStats",
    "FaultyTNet",
    "FaultyBNet",
    "ReliableTransport",
]
