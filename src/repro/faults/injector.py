"""Wire-level fault injection: a T-net that misbehaves on schedule.

:class:`FaultyTNet` replaces the perfect :class:`~repro.network.tnet.TNet`
when a :class:`~repro.faults.plan.FaultPlan` is active.  Packets entering
:meth:`inject` are handed to the reliable transport for framing (sequence
number + checksum); the transport then calls :meth:`transmit` for the
actual wire crossing, where the plan's seeded RNG decides per frame
whether to drop, duplicate, corrupt, or delay it.

Delayed frames are held in a side buffer and released into their channel
after N drain rounds — which reorders them against other flows while the
per-flow resequencer in the transport restores the FIFO order the
acknowledge idiom depends on.  A held frame still counts as *injected*
(in flight), so the machine's pump loop keeps draining until every delay
has expired; nothing can be stranded.

Every fault decision is appended to :attr:`FaultyTNet.schedule`, the
byte-for-byte replayable record the chaos determinism tests compare.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from dataclasses import dataclass

from repro.core.errors import CommTimeoutError
from repro.faults.plan import FaultPlan
from repro.network.bnet import BNet
from repro.network.packet import LINK_CONTROL_KINDS, Packet
from repro.network.tnet import TNet
from repro.network.topology import TorusTopology


@dataclass
class FaultStats:
    """Counters shared by the injector and the reliable transport."""

    frames_sent: int = 0
    dropped: int = 0
    duplicated: int = 0
    corrupted: int = 0
    delayed: int = 0
    blackholed: int = 0
    # transport side
    retries: int = 0
    timeouts: int = 0
    acks_sent: int = 0
    nacks_sent: int = 0
    dup_discarded: int = 0
    corrupt_discarded: int = 0
    reordered: int = 0
    degraded_discards: int = 0

    def as_dict(self) -> dict[str, int]:
        return dataclasses.asdict(self)


class FaultyTNet(TNet):
    """A T-net whose wire obeys a seeded :class:`FaultPlan`."""

    def __init__(self, topology: TorusTopology, plan: FaultPlan,
                 rng) -> None:
        super().__init__(topology)
        self.plan = plan
        self.rng = rng
        self.stats = FaultStats()
        #: Cells declared dead; frames toward them fall off the wire.
        self.killed: set[int] = set()
        #: Replayable log of fault decisions:
        #: (action, packet-kind, src, dst, link_seq) tuples.
        self.schedule: list[tuple[str, str, int, int, int]] = []
        #: Frames being delayed: [rounds_left, packet] entries.
        self._delayed: list[list] = []
        #: Set by the Machine after construction; frames route through it.
        self.transport = None

    # ------------------------------------------------------------------
    # Injection: frame first, then cross the wire
    # ------------------------------------------------------------------

    def inject(self, packet: Packet) -> None:
        self.validate_endpoints(packet)
        if self.transport is None or packet.kind in LINK_CONTROL_KINDS:
            # Control frames are framed by the transport itself and enter
            # through transmit(); anything else arriving before the
            # transport is wired up takes the perfect-wire path.
            super().inject(packet)
            return
        self.transport.outbound(packet)

    def transmit(self, packet: Packet) -> None:
        """Cross the faulty wire once (called for framed data frames,
        retransmissions, and link control frames alike)."""
        plan, rng = self.plan, self.rng
        self.stats.frames_sent += 1
        if packet.dst in self.killed:
            self.stats.blackholed += 1
            self._log("blackhole", packet)
            return
        if plan.drop_rate and rng.random() < plan.drop_rate:
            self.stats.dropped += 1
            self._log("drop", packet)
            return
        copies = [packet]
        if plan.dup_rate and rng.random() < plan.dup_rate:
            copies.append(dataclasses.replace(packet))
            self.stats.duplicated += 1
            self._log("dup", packet)
        for copy in copies:
            if plan.corrupt_rate and rng.random() < plan.corrupt_rate:
                copy = self._corrupt(copy)
            if plan.delay_rate and rng.random() < plan.delay_rate:
                rounds = 1 + rng.randrange(plan.delay_max_rounds)
                self.stats.delayed += 1
                self._log(f"delay:{rounds}", copy)
                self._delayed.append([rounds, copy])
                self.injected_count += 1
            else:
                super().inject(copy)

    def _corrupt(self, packet: Packet) -> Packet:
        """Flip one payload bit (or mangle the checksum of an empty
        frame); the original stays pristine in the retransmit buffer."""
        rng = self.rng
        self.stats.corrupted += 1
        self._log("corrupt", packet)
        if packet.data:
            data = bytearray(packet.data)
            data[rng.randrange(len(data))] ^= 1 << rng.randrange(8)
            return dataclasses.replace(packet, data=bytes(data))
        return dataclasses.replace(
            packet, checksum=packet.checksum ^ 0xDEADBEEF)

    def _log(self, action: str, packet: Packet) -> None:
        self.schedule.append((action, packet.kind.value, packet.src,
                              packet.dst, packet.link_seq))

    # ------------------------------------------------------------------
    # Delay release: every drain round ages the held frames
    # ------------------------------------------------------------------

    def _tick_delayed(self) -> None:
        if not self._delayed:
            return
        still: list[list] = []
        for entry in self._delayed:
            entry[0] -= 1
            if entry[0] <= 0:
                packet = entry[1]
                # Already counted as injected when stashed; enter the
                # channel directly so the quiescence accounting balances.
                self._channels.setdefault(
                    (packet.src, packet.dst), deque()).append(packet)
            else:
                still.append(entry)
        self._delayed = still

    def drain_all(self) -> list[Packet]:
        self._tick_delayed()
        return super().drain_all()

    def drain_to(self, dst: int) -> list[Packet]:
        self._tick_delayed()
        return super().drain_to(dst)

    @property
    def in_flight(self) -> int:
        return super().in_flight + len(self._delayed)

    @property
    def delayed_frames(self) -> int:
        return len(self._delayed)


class FaultyBNet(BNet):
    """A B-net bus whose broadcasts obey the same fault plan.

    The B-net's receive side is a synchronous pull (cells poll their bus
    queue), so reliability is modelled at the bus interface itself: each
    per-receiver enqueue rolls the wire faults, and a dropped or corrupted
    copy is retried immediately (a NACK-on-the-spot bus protocol) until
    it lands or the retry budget is spent.  Duplicates are suppressed at
    the receiving interface — the bus is totally ordered, so a repeated
    sequence number is trivially detectable.  Functional semantics are
    therefore identical to the perfect bus; the fault and retry counters
    (shared with the T-net's :class:`FaultStats`) record the weather."""

    def __init__(self, num_cells: int, plan: FaultPlan, rng,
                 stats: FaultStats) -> None:
        super().__init__(num_cells)
        self.plan = plan
        self.rng = rng
        self.stats = stats

    def _queue_append(self, cell: int, packet: Packet) -> None:
        plan, rng = self.plan, self.rng
        for attempt in range(plan.max_retries + 1):
            if attempt:
                self.stats.retries += 1
            if plan.drop_rate and rng.random() < plan.drop_rate:
                self.stats.dropped += 1
                continue
            if plan.dup_rate and rng.random() < plan.dup_rate:
                # The duplicate copy is discarded by the receiving
                # interface (repeated bus sequence number).
                self.stats.duplicated += 1
                self.stats.dup_discarded += 1
            if plan.corrupt_rate and rng.random() < plan.corrupt_rate:
                # Checksum mismatch at the interface: NACK and re-send.
                self.stats.corrupted += 1
                self.stats.corrupt_discarded += 1
                self.stats.nacks_sent += 1
                continue
            self._queue(cell).append(packet)
            return
        raise CommTimeoutError(
            f"B-net broadcast from {packet.src} to cell {cell} failed "
            f"after {plan.max_retries} retries under fault plan "
            f"{plan.name!r}")

    def broadcast(self, packet: Packet) -> None:
        if packet.src != -1 and not 0 <= packet.src < self.num_cells:
            super().broadcast(packet)  # reuse the validation error path
        for cell in range(self.num_cells):
            if cell != packet.src:
                self._queue_append(cell, packet)
        self.broadcast_count += 1
        if self.observer is not None:
            self.observer.on_broadcast(packet)

    def scatter(self, packets: list[Packet]) -> None:
        for packet in packets:
            if not 0 <= packet.dst < self.num_cells:
                super().scatter([packet])  # reuse the validation error
            self._queue_append(packet.dst, packet)
