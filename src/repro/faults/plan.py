"""Fault plans: declarative, seed-reproducible failure schedules.

A :class:`FaultPlan` describes *everything* that will go wrong during one
run — wire fault rates, cell kills and stalls, queue-pressure overrides —
plus the recovery budget the reliable transport may spend tolerating it.
All randomness flows from ``plan.seed`` through one ``random.Random``
held by the injector, so a failing run replays byte-for-byte from its
plan alone.

Plans travel three ways:

* programmatically — ``FaultPlan(seed=7, drop_rate=0.02)``;
* through the machine config — ``MachineConfig(fault_plan=plan)``;
* ambiently — ``with repro.faults.applied(plan): app.run()``, the path
  the chaos harness uses because application ``run()`` entry points
  build their machines internally (mirrors ``repro.trace.sanitize``).

JSON round-tripping (:meth:`FaultPlan.to_dict` / :meth:`from_dict`)
backs the ``repro chaos --plan file.json`` CLI.
"""

from __future__ import annotations

import json
from collections.abc import Iterator
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import asdict, dataclass, fields
from pathlib import Path
from typing import Any

from repro.core.errors import ConfigurationError


@dataclass(frozen=True)
class KillSpec:
    """Kill cell ``pe`` immediately before its ``at_resume``-th scheduler
    resumption (0 kills it before it runs its first blocked step)."""

    pe: int
    at_resume: int = 0


@dataclass(frozen=True)
class StallSpec:
    """Freeze cell ``pe`` for ``passes`` scheduler rounds starting at its
    ``at_resume``-th resumption — a transient hiccup, not a death."""

    pe: int
    at_resume: int = 0
    passes: int = 3


@dataclass(frozen=True)
class FaultPlan:
    """One complete, replayable failure schedule."""

    name: str = "custom"
    seed: int = 0
    # --- wire faults (per transmitted frame, including retransmissions) --
    drop_rate: float = 0.0
    dup_rate: float = 0.0
    corrupt_rate: float = 0.0
    delay_rate: float = 0.0
    #: A delayed frame is held for 1..delay_max_rounds drain rounds.
    delay_max_rounds: int = 4
    # --- cell faults -----------------------------------------------------
    kills: tuple[KillSpec, ...] = ()
    stalls: tuple[StallSpec, ...] = ()
    #: With degradation on, collectives shrink around killed cells and
    #: frames to them are discarded; off, communication with a killed
    #: cell exhausts its retries into a CommTimeoutError.
    degrade: bool = False
    # --- queue pressure (None keeps the hardware defaults) ---------------
    queue_capacity_words: int | None = None
    spill_buffer_words: int | None = None
    max_spill_buffers: int | None = None
    # --- recovery budget -------------------------------------------------
    #: Quiescent pump rounds before the transport retransmits everything
    #: still unacknowledged.
    timeout_rounds: int = 3
    #: Retransmissions per frame before giving up with CommTimeoutError.
    max_retries: int = 16
    #: Scheduler passes with no progress before the flag-wait/barrier
    #: watchdog converts a silent hang into a CommTimeoutError.
    watchdog_passes: int = 6

    def __post_init__(self) -> None:
        for rate_name in ("drop_rate", "dup_rate", "corrupt_rate",
                          "delay_rate"):
            rate = getattr(self, rate_name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(
                    f"fault plan {self.name!r}: {rate_name} must be in "
                    f"[0, 1], got {rate}")
        if self.delay_max_rounds < 1:
            raise ConfigurationError(
                f"fault plan {self.name!r}: delay_max_rounds must be >= 1")
        if self.timeout_rounds < 1 or self.max_retries < 1:
            raise ConfigurationError(
                f"fault plan {self.name!r}: recovery budget must allow at "
                "least one timeout round and one retry")
        if self.watchdog_passes < 1:
            raise ConfigurationError(
                f"fault plan {self.name!r}: watchdog_passes must be >= 1")

    @property
    def wire_faults(self) -> bool:
        """True when any per-frame fault rate is non-zero."""
        return bool(self.drop_rate or self.dup_rate or self.corrupt_rate
                    or self.delay_rate)

    def killed_at(self, pe: int, resume: int) -> bool:
        return any(k.pe == pe and resume >= k.at_resume for k in self.kills)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        out = asdict(self)
        out["kills"] = [asdict(k) for k in self.kills]
        out["stalls"] = [asdict(s) for s in self.stalls]
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultPlan":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"fault plan has unknown keys {sorted(unknown)}")
        kwargs = dict(data)
        kwargs["kills"] = tuple(
            KillSpec(**k) for k in data.get("kills", ()))
        kwargs["stalls"] = tuple(
            StallSpec(**s) for s in data.get("stalls", ()))
        return cls(**kwargs)

    @classmethod
    def load(cls, path: str | Path) -> list["FaultPlan"]:
        """Read one plan or a list of plans from a JSON file."""
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        if isinstance(data, dict):
            data = [data]
        return [cls.from_dict(entry) for entry in data]


# ----------------------------------------------------------------------
# Built-in plan sets
# ----------------------------------------------------------------------

def smoke_plans(seed: int = 1994) -> tuple[FaultPlan, ...]:
    """The small CI sweep: every wire-fault class at >= 1% rates."""
    return (
        FaultPlan(name="drop", seed=seed, drop_rate=0.02),
        FaultPlan(name="storm", seed=seed + 1, drop_rate=0.01,
                  dup_rate=0.02, corrupt_rate=0.01, delay_rate=0.05),
    )


def full_plans(seed: int = 1994) -> tuple[FaultPlan, ...]:
    """The default ``repro chaos`` sweep: each fault class isolated,
    then combined, then combined under queue pressure."""
    return (
        FaultPlan(name="drop", seed=seed, drop_rate=0.03),
        FaultPlan(name="dup", seed=seed + 1, dup_rate=0.05),
        FaultPlan(name="corrupt", seed=seed + 2, corrupt_rate=0.03),
        FaultPlan(name="delay", seed=seed + 3, delay_rate=0.10,
                  delay_max_rounds=6),
        FaultPlan(name="storm", seed=seed + 4, drop_rate=0.02,
                  dup_rate=0.02, corrupt_rate=0.02, delay_rate=0.05),
        FaultPlan(name="squeeze", seed=seed + 5, drop_rate=0.01,
                  delay_rate=0.05, queue_capacity_words=16),
    )


# ----------------------------------------------------------------------
# Ambient plan (mirrors repro.trace.sanitize)
# ----------------------------------------------------------------------

_ACTIVE: ContextVar[FaultPlan | None] = ContextVar(
    "repro_fault_plan", default=None)


def active_plan() -> FaultPlan | None:
    """The ambient fault plan, if a :func:`applied` region is open."""
    return _ACTIVE.get()


@contextmanager
def applied(plan: FaultPlan | None) -> Iterator[None]:
    """Apply ``plan`` to every Machine built inside the region."""
    token = _ACTIVE.set(plan)
    try:
        yield
    finally:
        _ACTIVE.reset(token)
