"""Chaos harness: sweep fault plans over the shipped applications.

The property under test is end-to-end: *a run under any seeded fault
plan is indistinguishable from the fault-free run* — bit-identical
per-cell results and memory image, functional verification passing, and
a clean :mod:`repro.check` report over the (sanitized) trace — except
for the robustness counters that say how hard the fabric had to work.

Every application is first run on a perfect machine to capture golden
digests; each plan then re-runs it inside ``repro.faults.applied(plan)``
and the digests must match.  Failures are collected, not raised, so one
sweep reports every broken (app, plan) pair; an unexpected error (for
example a CommTimeoutError from an exhausted retry budget) marks its
case failed with the message attached.

Imports of the application registry happen lazily inside functions:
this module is reachable from the CLI while :mod:`repro.machine` imports
:mod:`repro.faults`, and the app modules import the machine right back.
"""

from __future__ import annotations

import hashlib
import tempfile
from collections.abc import Callable, Iterable
from contextlib import nullcontext
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.errors import ReproError
from repro.faults.injector import FaultyTNet
from repro.faults.plan import FaultPlan, applied, full_plans, smoke_plans
from repro.trace import sanitize
from repro.trace.buffer import TraceBuffer

#: Apps exercised by ``repro chaos --smoke`` (one VPP Fortran app with
#: flag-synchronized PUTs, one C app with GET traffic — small but they
#: cover both one-sided directions).
SMOKE_APPS = ("EP", "MatMul")

#: Scaled-down problem sizes for ``repro chaos --recover --smoke``:
#: same communication patterns, CI-sized runs (each recover case runs
#: its app three times — golden, killed, resumed).
SMOKE_RECOVER_PARAMS: dict[str, dict[str, Any]] = {
    "MatMul": {"num_cells": 4, "n": 16},
    "CG": {"num_cells": 4, "n": 32, "outer": 3, "inner": 3},
    "RingShift": {"num_cells": 4, "hops": 9},
}


# ----------------------------------------------------------------------
# Digests
# ----------------------------------------------------------------------

def results_digest(results: Any) -> str:
    """Deterministic digest of per-cell return values (numpy-aware)."""
    h = hashlib.sha256()
    _hash_value(h, results)
    return h.hexdigest()


def _hash_value(h, value: Any) -> None:
    if isinstance(value, np.ndarray):
        h.update(b"nd:")
        h.update(str(value.dtype).encode())
        h.update(str(value.shape).encode())
        h.update(np.ascontiguousarray(value).tobytes())
    elif isinstance(value, (list, tuple)):
        h.update(b"seq:%d:" % len(value))
        for item in value:
            _hash_value(h, item)
    elif isinstance(value, dict):
        h.update(b"map:%d:" % len(value))
        for key in sorted(value, key=repr):
            h.update(repr(key).encode())
            _hash_value(h, value[key])
    else:
        h.update(repr(value).encode())


def memory_digest(machine) -> str:
    """Digest of every cell's *used* memory: the flag area plus the
    symmetric heap (bottom-up) and the private area (top-down).  The
    untouched middle is skipped — it is zero on both machines anyway and
    cells may carry hundreds of megabytes of it."""
    h = hashlib.sha256()
    top = machine.config.memory_per_cell
    for pe in range(machine.config.num_cells):
        memory = machine.hw_cells[pe].memory
        heap_end = machine._heap_next[pe]
        private_start = machine._private_next[pe]
        h.update(b"pe:%d:" % pe)
        h.update(memory.read(0, heap_end))
        if private_start < top:
            h.update(memory.read(private_start, top - private_start))
    return h.hexdigest()


def trace_digest(trace: TraceBuffer) -> str:
    """Digest of a trace, invariant to process-global packet serials.

    ``msg_id`` carries raw packet serial numbers from a process-wide
    counter, so two identical runs in one process get different raw ids;
    they are renumbered densely in order of first appearance before
    hashing.  Two runs with the same fault schedule must digest equal."""
    remap: dict[int, int] = {0: 0}
    h = hashlib.sha256()
    for ev in trace.all_events():
        if ev.msg_id not in remap:
            remap[ev.msg_id] = len(remap)
        record = (
            int(ev.kind), ev.pe, ev.seq, ev.partner, ev.size,
            int(ev.stride), ev.send_flag, ev.recv_flag, int(ev.is_ack),
            remap[ev.msg_id], ev.flag, ev.target, ev.group,
            ev.group_size, round(ev.work, 9), ev.raddr, ev.rchunk,
            ev.rcount, ev.rstep, ev.laddr, ev.lchunk, ev.lcount,
            ev.lstep,
        )
        h.update(repr(record).encode())
    return h.hexdigest()


# ----------------------------------------------------------------------
# Sweep
# ----------------------------------------------------------------------

@dataclass
class ChaosCase:
    """One (application, fault plan) cell of the sweep."""

    app: str
    plan: str
    seed: int
    ok: bool
    results_match: bool = False
    memory_match: bool = False
    verified: bool = False
    check_clean: bool | None = None
    counters: dict[str, int] = field(default_factory=dict)
    error: str | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "app": self.app, "plan": self.plan, "seed": self.seed,
            "ok": self.ok, "results_match": self.results_match,
            "memory_match": self.memory_match, "verified": self.verified,
            "check_clean": self.check_clean,
            "counters": dict(self.counters), "error": self.error,
        }

    def describe(self) -> str:
        if self.ok:
            c = self.counters
            weather = (f"{c.get('dropped', 0)} dropped, "
                       f"{c.get('duplicated', 0)} dup, "
                       f"{c.get('corrupted', 0)} corrupt, "
                       f"{c.get('delayed', 0)} delayed, "
                       f"{c.get('retries', 0)} retries")
            return f"ok   {self.app:<9} {self.plan:<8} ({weather})"
        if self.error is not None:
            return f"FAIL {self.app:<9} {self.plan:<8} {self.error}"
        what = [
            name for name, good in (
                ("results", self.results_match),
                ("memory", self.memory_match),
                ("verify", self.verified),
                ("check", self.check_clean is not False),
            ) if not good
        ]
        return (f"FAIL {self.app:<9} {self.plan:<8} "
                f"mismatch: {', '.join(what)}")


@dataclass
class ChaosReport:
    """Every case of one sweep."""

    cases: list[ChaosCase] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return bool(self.cases) and all(case.ok for case in self.cases)

    @property
    def diverged(self) -> bool:
        """True when some run *completed* but its digests differ from
        the golden run's — the serious failure mode (an error case is a
        crash, a divergence is silent corruption)."""
        return any(not case.ok and case.error is None
                   for case in self.cases)

    def summary(self) -> str:
        failed = sum(1 for case in self.cases if not case.ok)
        verdict = "all survived" if failed == 0 else f"{failed} FAILED"
        return (f"chaos: {len(self.cases)} fault runs over "
                f"{len({c.app for c in self.cases})} app(s): {verdict}")

    def to_dict(self) -> dict[str, Any]:
        return {"ok": self.ok, "diverged": self.diverged,
                "summary": self.summary(),
                "cases": [case.to_dict() for case in self.cases]}


def run_under_plan(app: str, plan: FaultPlan | None, *,
                   cells: int | None = None, annotate: bool = False):
    """Run one workload under ``plan`` (None = perfect machine)."""
    from repro.apps.workloads import workload  # lazy: cycles via machine

    with applied(plan), sanitize.enabled(annotate):
        return workload(app).run(num_cells=cells)


def chaos_sweep(apps: Iterable[str] | None = None,
                plans: Iterable[FaultPlan] | None = None, *,
                cells: int | None = None, check: bool = True,
                log: Callable[[str], None] | None = None) -> ChaosReport:
    """Run ``apps`` x ``plans`` and compare every faulted run against
    its app's fault-free golden run."""
    from repro.apps.workloads import ORDER  # lazy: cycles via machine

    app_names = tuple(apps) if apps else ORDER
    plan_list = tuple(plans) if plans else full_plans()
    report = ChaosReport()
    for app in app_names:
        if log is not None:
            log(f"golden run: {app}")
        golden = run_under_plan(app, None, cells=cells)
        want_results = results_digest(golden.results)
        want_memory = memory_digest(golden.machine)
        for plan in plan_list:
            case = _run_case(app, plan, want_results, want_memory,
                             cells=cells, check=check)
            if log is not None:
                log(case.describe())
            report.cases.append(case)
    return report


def _run_case(app: str, plan: FaultPlan, want_results: str,
              want_memory: str, *, cells: int | None,
              check: bool) -> ChaosCase:
    from repro.check.runner import check_trace  # lazy: heavy import

    case = ChaosCase(app=app, plan=plan.name, seed=plan.seed, ok=False)
    try:
        run = run_under_plan(app, plan, cells=cells, annotate=check)
    except ReproError as exc:
        case.error = f"{type(exc).__name__}: {exc}".splitlines()[0]
        return case
    tnet = run.machine.tnet
    if isinstance(tnet, FaultyTNet):
        case.counters = tnet.stats.as_dict()
    case.results_match = results_digest(run.results) == want_results
    case.memory_match = memory_digest(run.machine) == want_memory
    case.verified = bool(run.verified)
    if check:
        case.check_clean = check_trace(
            run.trace, f"{app}@{plan.name}").clean
    case.ok = (case.results_match and case.memory_match and case.verified
               and case.check_clean is not False)
    return case


def smoke_sweep(*, seed: int = 1994, cells: int | None = None,
                log: Callable[[str], None] | None = None) -> ChaosReport:
    """The CI-sized sweep behind ``repro chaos --smoke``."""
    return chaos_sweep(SMOKE_APPS, smoke_plans(seed), cells=cells,
                       log=log)


# ----------------------------------------------------------------------
# Kill-and-resume sweep (repro chaos --recover)
# ----------------------------------------------------------------------

@dataclass
class RecoverCase:
    """One (application, fault plan) kill-and-resume round trip."""

    app: str
    plan: str  # plan name, or "none" for the fault-free machine
    seed: int
    site: int  # checkpoint site the kill happens at
    ok: bool
    captures: int = 0
    results_match: bool = False
    memory_match: bool = False
    trace_match: bool = False
    verified: bool = False
    snapshot: str | None = None
    error: str | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "app": self.app, "plan": self.plan, "seed": self.seed,
            "site": self.site, "ok": self.ok, "captures": self.captures,
            "results_match": self.results_match,
            "memory_match": self.memory_match,
            "trace_match": self.trace_match, "verified": self.verified,
            "snapshot": self.snapshot, "error": self.error,
        }

    def describe(self) -> str:
        if self.ok:
            return (f"ok   {self.app:<9} {self.plan:<8} killed at "
                    f"site {self.site}, resumed byte-identical")
        if self.error is not None:
            return f"FAIL {self.app:<9} {self.plan:<8} {self.error}"
        what = [
            name for name, good in (
                ("trace", self.trace_match),
                ("results", self.results_match),
                ("memory", self.memory_match),
                ("verify", self.verified),
            ) if not good
        ]
        return (f"FAIL {self.app:<9} {self.plan:<8} resumed run "
                f"diverged: {', '.join(what)}")


@dataclass
class RecoverReport:
    """Every case of one kill-and-resume sweep."""

    cases: list[RecoverCase] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return bool(self.cases) and all(case.ok for case in self.cases)

    @property
    def diverged(self) -> bool:
        """A resumed run completed but did not reproduce the golden
        digests (versus an error case, where something crashed)."""
        return any(not case.ok and case.error is None
                   for case in self.cases)

    def summary(self) -> str:
        failed = sum(1 for case in self.cases if not case.ok)
        verdict = ("all resumed byte-identical" if failed == 0
                   else f"{failed} FAILED")
        return (f"recover: {len(self.cases)} kill-and-resume runs over "
                f"{len({c.app for c in self.cases})} app(s): {verdict}")

    def to_dict(self) -> dict[str, Any]:
        return {"ok": self.ok, "diverged": self.diverged,
                "summary": self.summary(),
                "cases": [case.to_dict() for case in self.cases]}


def recover_sweep(apps: Iterable[str] | None = None,
                  plans: Iterable[FaultPlan] | None = None, *,
                  seed: int = 1994, cells: int | None = None,
                  smoke: bool = False,
                  snapshot_root: str | Path | None = None,
                  log: Callable[[str], None] | None = None,
                  ) -> RecoverReport:
    """Kill-and-resume every (app, plan) pair and demand byte equality.

    Each case runs its application three times: a golden run with the
    checkpoint gate armed at a seed-chosen site; a crash run that dies
    (``stop_after_capture``) right after saving that site's snapshot;
    and a resumed run completing from the snapshot.  The resumed run
    must be byte-identical to the golden one — trace, per-cell results,
    and memory image — including under every fault plan.

    ``smoke`` shrinks the problem sizes for CI.  ``snapshot_root``
    keeps each case's snapshot on disk (for artifact upload on
    failure); by default they live in temp directories.
    """
    from repro.ckpt.snapshot import CKPT_APPS  # lazy: cycles via machine

    app_names = tuple(apps) if apps else CKPT_APPS
    if plans is None:
        plan_iter = smoke_plans(seed) if smoke else full_plans(seed)
    else:
        plan_iter = tuple(plans)
    report = RecoverReport()
    for app in app_names:
        for plan in (None, *plan_iter):
            case = _recover_case(app, plan, seed, cells=cells,
                                 smoke=smoke,
                                 snapshot_root=snapshot_root)
            if log is not None:
                log(case.describe())
            report.cases.append(case)
    return report


def _recover_case(app: str, plan: FaultPlan | None, base_seed: int, *,
                  cells: int | None, smoke: bool,
                  snapshot_root: str | Path | None) -> RecoverCase:
    from repro.apps.workloads import workload  # lazy: cycles via machine
    from repro.ckpt import policy as ckpt_policy
    from repro.ckpt.snapshot import resume_workload
    from repro.core.errors import CheckpointInterrupt

    plan_seed = plan.seed if plan is not None else base_seed
    plan_name = plan.name if plan is not None else "none"
    site = 1 + plan_seed % 3
    case = RecoverCase(app=app, plan=plan_name, seed=plan_seed,
                       site=site, ok=False)
    params = dict(SMOKE_RECOVER_PARAMS.get(app, {})) if smoke else {}
    run_cells = params.pop("num_cells", None)
    if cells is not None:
        run_cells = cells

    def _run():
        return workload(app).run(num_cells=run_cells, **params)

    try:
        with applied(plan), ckpt_policy.applied(
                ckpt_policy.CheckpointPolicy(at_site=site)):
            golden = _run()
        captures = golden.machine.ckpt_seq
        if captures == 0:
            case.error = (f"checkpoint site {site} never reached; the "
                          "golden run captured nothing")
            return case
        want_trace = trace_digest(golden.machine.trace)
        want_results = results_digest(golden.results)
        want_memory = memory_digest(golden.machine)
        if snapshot_root is not None:
            snap_dir = Path(snapshot_root) / f"{app}-{plan_name}"
            snap_dir.mkdir(parents=True, exist_ok=True)
            holder = nullcontext(str(snap_dir))
        else:
            holder = tempfile.TemporaryDirectory(prefix="repro-recover-")
        with holder as snap:
            try:
                with applied(plan), ckpt_policy.applied(
                        ckpt_policy.CheckpointPolicy(
                            at_site=site, directory=str(snap),
                            stop_after_capture=True)):
                    _run()
            except CheckpointInterrupt as exc:
                snapshot_path = exc.snapshot_path
            else:
                case.error = (f"crash run finished uninterrupted; no "
                              f"capture happened at site {site}")
                return case
            if snapshot_root is not None:
                case.snapshot = str(snapshot_path)
            # The snapshot's config carries the fault plan (and the
            # scheduler it forces), so resume needs no ambient state.
            resumed = resume_workload(snapshot_path)
        case.captures = resumed.machine.ckpt_seq
        case.trace_match = (
            trace_digest(resumed.machine.trace) == want_trace)
        case.results_match = results_digest(resumed.results) == want_results
        case.memory_match = memory_digest(resumed.machine) == want_memory
        case.verified = bool(resumed.verified)
        case.ok = (case.trace_match and case.results_match
                   and case.memory_match and case.verified
                   and case.captures == captures)
    except ReproError as exc:
        case.error = f"{type(exc).__name__}: {exc}".splitlines()[0]
    return case
