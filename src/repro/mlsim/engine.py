"""The MLSim timing engine: trace replay as a discrete-event simulation.

Each PE walks its own trace, accumulating time into the four buckets of
section 5.3.  Cross-PE interactions — flag updates from arriving messages,
barrier establishment, reductions, SEND/RECEIVE matching — are resolved
through shared registries: a PE that reaches a wait it cannot satisfy yet
*parks*; the PE whose progress satisfies the condition wakes it.  MLSim
"preserv[es] the order of message communications and barrier
synchronization between processors with a delay parameter": per-channel
FIFO clamping keeps (source, destination) message order, which the
acknowledge idiom (GET after PUT) relies on.

Two deliberate approximations, both in the spirit of a message-level
simulator:

* Receive-side software service (interrupt handling on the AP1000) is
  charged to the receiving PE as *stolen* CPU time applied at its next
  event, rather than preempting it mid-activity.
* A flag wait resumes at the time of the ``target``-th flag increment
  among those currently known; a sender processed later with an earlier
  completion time cannot move an already-resumed waiter earlier (a
  conservative, no-rollback policy).
"""

from __future__ import annotations

import math
from bisect import insort
from collections import deque
from dataclasses import dataclass, field

from repro.core.errors import SimulationError
from repro.machine.config import SPARC_US_PER_FLOP
from repro.mlsim.breakdown import MLSimResult, PEBreakdown
from repro.mlsim.params import MLSimParams
from repro.mlsim import put_model as pm
from repro.network.topology import TorusTopology
from repro.obs.registry import REPLAY_SCHEMA, Histogram
from repro.trace.buffer import TraceBuffer
from repro.trace.events import EventKind, TraceEvent


class _MetricsAccum:
    """Replay-side metric accumulation (repro.obs).

    Per-link busy time follows the same store-and-forward convention as
    :meth:`MLSimEngine._contended_arrival`: a message's wire time is
    charged to every physical link on its dimension-order route, an
    upper bound that exposes hot links.
    """

    def __init__(self, num_pes: int) -> None:
        self.flag_wait = Histogram()
        self.barrier_wait = Histogram()
        self.dma_busy = [0.0] * num_pes
        self.link_busy: dict[tuple[int, int], float] = {}
        self.link_bytes: dict[tuple[int, int], int] = {}
        self.link_frames: dict[tuple[int, int], int] = {}
        self.instants = {"RETRY": 0, "TIMEOUT": 0, "SPILL": 0}


@dataclass
class _PEState:
    pe: int
    events: list[TraceEvent]
    cursor: int = 0
    clock: float = 0.0
    buckets: PEBreakdown = field(default_factory=PEBreakdown)
    pending_theft: float = 0.0
    attempted: bool = False  # current event already charged its prolog

    @property
    def finished(self) -> bool:
        return self.cursor >= len(self.events)


class MLSimEngine:
    """Replays one trace under one parameter set."""

    def __init__(self, trace: TraceBuffer, params: MLSimParams,
                 topology: TorusTopology | None = None, *,
                 link_contention: bool = False,
                 record_timeline: bool = False,
                 collect_metrics: bool = False) -> None:
        if topology is None:
            topology = TorusTopology.for_cells(trace.num_pes)
        if topology.num_cells != trace.num_pes:
            raise SimulationError(
                f"topology has {topology.num_cells} cells but trace has "
                f"{trace.num_pes} PEs")
        self.trace = trace
        self.p = params
        self.topology = topology
        #: Optional extension beyond the paper's MLSim (which models the
        #: network with delay parameters only): serialize messages that
        #: share a physical T-net link.  Approximate — see
        #: :meth:`_contended_arrival`.
        self.link_contention = link_contention
        self._link_free: dict[tuple[int, int], float] = {}
        self._route_cache: dict[tuple[int, int], tuple] = {}
        #: Optional span log (see repro.mlsim.timeline).
        self.timeline = None
        if record_timeline:
            from repro.mlsim.timeline import Timeline
            self.timeline = Timeline(num_pes=trace.num_pes)
        #: Optional replay metric accumulation (repro.obs).
        self.collect = _MetricsAccum(trace.num_pes) if collect_metrics \
            else None
        self.pes = [_PEState(pe, trace.events_for(pe))
                    for pe in range(trace.num_pes)]
        # --- shared registries -----------------------------------------
        self._flag_times: dict[int, list[float]] = {}
        self._flag_waiters: dict[int, list[tuple[int, int]]] = {}
        self._barrier_gen: dict[tuple[int, int], int] = {}   # (pe, gid)
        self._coll_gen: dict[tuple[int, int], int] = {}
        self._barrier_arrivals: dict[tuple[int, int], dict[int, float]] = {}
        self._barrier_release: dict[tuple[int, int], float] = {}
        self._coll_arrivals: dict[tuple[int, int], dict[int, float]] = {}
        self._coll_release: dict[tuple[int, int], float] = {}
        self._slot_waiters: dict[tuple, list[int]] = {}
        self._ring_arrival: dict[int, float] = {}
        self._ring_waiters: dict[int, int] = {}
        self._chan_last: dict[tuple[int, int], tuple[float, float]] = {}
        self._dist_cache: dict[tuple[int, int], int] = {}
        self._runnable: deque[int] = deque()
        self._queued: set[int] = set()
        self.messages = 0
        self.bytes_on_wire = 0

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------

    def run(self) -> MLSimResult:
        for pe in range(len(self.pes)):
            self._enqueue(pe)
        while self._runnable:
            pe = self._runnable.popleft()
            self._queued.discard(pe)
            self._advance(self.pes[pe])
        unfinished = [st.pe for st in self.pes if not st.finished]
        if unfinished:
            raise SimulationError(
                f"replay deadlock: PEs {unfinished[:16]} parked forever "
                "(trace and timing model disagree)")
        result = MLSimResult(
            model_name=self.p.name,
            per_pe=[st.buckets for st in self.pes],
            messages=self.messages,
            bytes_on_wire=self.bytes_on_wire,
        )
        for st in self.pes:
            st.buckets.clock = st.clock
        if self.collect is not None:
            result.metrics = self._metrics_dict()
        return result

    def _metrics_dict(self) -> dict:
        """Render the accumulated replay metrics as a JSON document."""
        c = self.collect
        assert c is not None
        elapsed = max((st.clock for st in self.pes), default=0.0)
        links = {}
        for key in sorted(c.link_busy):
            busy = c.link_busy[key]
            links[f"{key[0]}->{key[1]}"] = {
                "busy_us": busy,
                "bytes": c.link_bytes[key],
                "frames": c.link_frames[key],
                "utilization": busy / elapsed if elapsed else 0.0,
            }
        dma_max = max(c.dma_busy, default=0.0)
        return {
            "schema": REPLAY_SCHEMA,
            "model": self.p.name,
            "elapsed_us": elapsed,
            "waits": {
                "flag_wait": c.flag_wait.to_dict(),
                "barrier_wait": c.barrier_wait.to_dict(),
            },
            "dma": {
                "busy_us": list(c.dma_busy),
                "busy_us_max": dma_max,
                "busy_fraction_max": dma_max / elapsed if elapsed else 0.0,
            },
            "links": links,
            "links_max_utilization": max(
                (v["utilization"] for v in links.values()), default=0.0),
            "robustness": dict(c.instants),
        }

    # ------------------------------------------------------------------
    # Scheduling plumbing
    # ------------------------------------------------------------------

    def _enqueue(self, pe: int) -> None:
        if pe not in self._queued:
            self._queued.add(pe)
            self._runnable.append(pe)

    def _advance(self, st: _PEState) -> None:
        while not st.finished:
            if not self._dispatch(st, st.events[st.cursor]):
                return  # parked; a waker will re-enqueue
            st.cursor += 1
            st.attempted = False

    def _distance(self, a: int, b: int) -> int:
        key = (a, b)
        hops = self._dist_cache.get(key)
        if hops is None:
            hops = self.topology.distance(a, b)
            self._dist_cache[key] = hops
        return hops

    # ------------------------------------------------------------------
    # Time accounting helpers
    # ------------------------------------------------------------------

    def _apply_theft(self, st: _PEState) -> None:
        if st.pending_theft:
            self._span(st, st.pending_theft, "overhead", "stolen-interrupt")
            st.clock += st.pending_theft
            st.buckets.overhead += st.pending_theft
            st.pending_theft = 0.0

    def _span(self, st: _PEState, duration: float, bucket: str,
              label: str | None = None) -> None:
        if self.timeline is not None and duration > 0:
            from repro.mlsim.timeline import Span
            self.timeline.add(Span(
                pe=st.pe, start=st.clock, end=st.clock + duration,
                bucket=bucket,
                label=label or getattr(st, "current_label", "?")))

    def _busy(self, st: _PEState, duration: float, bucket: str) -> None:
        self._span(st, duration, bucket)
        st.clock += duration
        setattr(st.buckets, bucket, getattr(st.buckets, bucket) + duration)

    def _wait_until(self, st: _PEState, t: float) -> None:
        if t > st.clock:
            self._span(st, t - st.clock, "idle")
            st.buckets.idle += t - st.clock
            st.clock = t

    def _channel_arrival(self, src: int, dst: int, inject: float,
                         raw: float) -> float:
        """Clamp to per-channel FIFO order (static T-net routing).

        Ordering is by *injection* time.  Messages on one channel are
        usually discovered in injection order (a sender's trace is
        processed sequentially), and then each arrival is clamped behind
        the previous one.  A message discovered out of order — e.g. a GET
        reply, which is injected by the *target's* MSC+ the moment the
        request arrives, long before the target's own later sends are
        processed — was injected earlier than the current channel head
        and must NOT be clamped behind it.
        """
        key = (src, dst)
        if self.link_contention:
            raw = self._contended_arrival(src, dst, inject, raw)
        last_inject, last_arrival = self._chan_last.get(key, (-1.0, 0.0))
        if inject >= last_inject:
            arrival = max(raw, last_arrival)
            self._chan_last[key] = (inject, arrival)
        else:
            arrival = raw
        return arrival

    def _contended_arrival(self, src: int, dst: int, inject: float,
                           raw: float) -> float:
        """Serialize the message behind earlier traffic on shared links.

        Each physical link (an ordered pair of adjacent cells along the
        dimension-order route) is busy for the message's wire time; a
        message starting while any of its links is busy waits for the
        latest of them.  Approximation: contention is resolved in trace
        *processing* order, which is close to — but not exactly —
        global-time order; good enough to expose hot links, which is what
        the ablation quantifies.
        """
        if src == dst:
            return raw
        route = self._route_cache.get((src, dst))
        if route is None:
            route = tuple(self.topology.route(src, dst))
            self._route_cache[(src, dst)] = route
        wire = raw - inject   # prolog + per-hop delay + payload wire time
        busy = inject
        prev = src
        for node in route:
            busy = max(busy, self._link_free.get((prev, node), 0.0))
            prev = node
        start_delay = max(busy - inject, 0.0)
        arrival = raw + start_delay
        prev = src
        for node in route:
            self._link_free[(prev, node)] = inject + start_delay + wire
            prev = node
        return arrival

    def _charge_links(self, src: int, dst: int, wire_us: float,
                      nbytes: int) -> None:
        """Charge one message to every physical link on its route."""
        c = self.collect
        if c is None or src == dst:
            return
        route = self._route_cache.get((src, dst))
        if route is None:
            route = tuple(self.topology.route(src, dst))
            self._route_cache[(src, dst)] = route
        prev = src
        for node in route:
            key = (prev, node)
            c.link_busy[key] = c.link_busy.get(key, 0.0) + wire_us
            c.link_bytes[key] = c.link_bytes.get(key, 0) + nbytes
            c.link_frames[key] = c.link_frames.get(key, 0) + 1
            prev = node

    def _flow(self, src: int, depart: float, dst: int, arrival: float,
              kind: str, size: int) -> None:
        if self.timeline is not None:
            from repro.mlsim.timeline import Flow
            self.timeline.add_flow(Flow(
                src=src, depart=depart, dst=dst, arrival=arrival,
                kind=kind, size=size))

    def _record_flag(self, gid: int, t: float) -> None:
        if gid == 0:
            return
        times = self._flag_times.setdefault(gid, [])
        insort(times, t)
        waiters = self._flag_waiters.get(gid)
        if waiters:
            still = []
            for pe, target in waiters:
                if len(times) >= target:
                    self._enqueue(pe)
                else:
                    still.append((pe, target))
            self._flag_waiters[gid] = still

    # ------------------------------------------------------------------
    # Event dispatch
    # ------------------------------------------------------------------

    def _dispatch(self, st: _PEState, ev: TraceEvent) -> bool:
        if self.timeline is not None:
            st.current_label = (f"{ev.kind.name}->{ev.partner}"
                                if ev.partner >= 0 else ev.kind.name)
        kind = ev.kind
        if kind is EventKind.COMPUTE:
            self._apply_theft(st)
            self._busy(st, ev.work * self.p.computation_factor, "execution")
            return True
        if kind is EventKind.RTSYS:
            self._apply_theft(st)
            self._busy(st, ev.work * self.p.computation_factor, "rtsys")
            return True
        if kind is EventKind.PUT:
            return self._do_put(st, ev)
        if kind is EventKind.GET:
            return self._do_get(st, ev)
        if kind is EventKind.FLAG_WAIT:
            return self._do_flag_wait(st, ev)
        if kind is EventKind.SEND:
            return self._do_send(st, ev)
        if kind is EventKind.RECV:
            return self._do_recv(st, ev)
        if kind is EventKind.BARRIER:
            return self._do_barrier(st, ev)
        if kind in (EventKind.GOP, EventKind.VGOP):
            return self._do_reduction(st, ev)
        if kind is EventKind.REMOTE_LOAD:
            self._apply_theft(st)
            self._busy(st, self.p.remote_access_time, "overhead")
            dist = self._distance(st.pe, ev.partner)
            round_trip = (pm.network_time(self.p, 0, dist)
                          + pm.get_reply_service_time(self.p, ev.size)
                          + pm.network_time(self.p, ev.size, dist))
            self._wait_until(st, st.clock + round_trip)
            self.messages += 2
            return True
        if kind is EventKind.REMOTE_STORE:
            self._apply_theft(st)
            self._busy(st, self.p.remote_access_time, "overhead")
            self.pes[ev.partner].pending_theft += pm.recv_cpu_theft(
                self.p, ev.size)
            self.messages += 1
            self.bytes_on_wire += ev.size
            return True
        if kind in (EventKind.CREG_STORE, EventKind.CREG_LOAD):
            self._apply_theft(st)
            self._busy(st, self.p.creg_access_time, "overhead")
            return True
        if kind in (EventKind.RETRY, EventKind.TIMEOUT, EventKind.SPILL):
            # Robustness bookkeeping from repro.faults: the link layer and
            # the queue spill hardware run concurrently with the processor,
            # so replay charges no time for them.
            if self.collect is not None:
                self.collect.instants[kind.name] += 1
            if self.timeline is not None:
                from repro.mlsim.timeline import Instant
                self.timeline.add_instant(Instant(
                    pe=st.pe, t=st.clock, name=kind.name))
            return True
        if kind is EventKind.PHASE:
            # User phase annotation (repro.obs): zero simulated time.
            if self.timeline is not None:
                from repro.mlsim.timeline import PhaseMark
                self.timeline.add_phase(PhaseMark(
                    pe=st.pe, t=st.clock,
                    label=self.trace.phase_label(ev.flag)))
            return True
        raise SimulationError(f"unknown trace event kind {kind}")

    # ------------------------------------------------------------------
    # PUT / GET
    # ------------------------------------------------------------------

    def _do_put(self, st: _PEState, ev: TraceEvent) -> bool:
        self._apply_theft(st)
        p = self.p
        self._busy(st, pm.put_send_cpu_time(p, ev.size), "overhead")
        depart = st.clock + pm.send_dma_setup_time(p)
        drain = pm.dma_drain_time(p, ev.size)
        if ev.send_flag:
            self._record_flag(
                ev.send_flag,
                depart + drain + pm.send_complete_to_flag_time(p))
        st.pending_theft += pm.send_complete_cpu_theft(p)
        dist = self._distance(st.pe, ev.partner)
        arrival = self._channel_arrival(
            st.pe, ev.partner, depart,
            depart + pm.network_time(p, ev.size, dist))
        if ev.recv_flag:
            self._record_flag(
                ev.recv_flag, arrival + pm.recv_flag_update_time(p, ev.size))
        self.pes[ev.partner].pending_theft += pm.recv_cpu_theft(p, ev.size)
        self._flow(st.pe, depart, ev.partner, arrival, "PUT", ev.size)
        if self.collect is not None:
            self.collect.dma_busy[st.pe] += drain
            self._charge_links(st.pe, ev.partner,
                               pm.network_time(p, ev.size, dist), ev.size)
        self.messages += 1
        self.bytes_on_wire += ev.size
        return True

    def _do_get(self, st: _PEState, ev: TraceEvent) -> bool:
        self._apply_theft(st)
        p = self.p
        self._busy(st, pm.get_send_cpu_time(p, ev.size), "overhead")
        depart = st.clock + pm.send_dma_setup_time(p)
        if ev.send_flag:
            self._record_flag(
                ev.send_flag, depart + pm.send_complete_to_flag_time(p))
        dist = self._distance(st.pe, ev.partner)
        req_arrival = self._channel_arrival(
            st.pe, ev.partner, depart, depart + pm.network_time(p, 0, dist))
        reply_depart = req_arrival + pm.get_reply_service_time(p, ev.size)
        self.pes[ev.partner].pending_theft += pm.get_reply_cpu_theft(
            p, ev.size)
        reply_arrival = self._channel_arrival(
            ev.partner, st.pe, reply_depart,
            reply_depart + pm.network_time(p, ev.size, dist))
        if ev.recv_flag:
            self._record_flag(
                ev.recv_flag,
                reply_arrival + pm.recv_flag_update_time(p, ev.size))
        st.pending_theft += pm.recv_cpu_theft(p, ev.size)
        self._flow(st.pe, depart, ev.partner, req_arrival, "GET", 0)
        self._flow(ev.partner, reply_depart, st.pe, reply_arrival,
                   "GET-REPLY", ev.size)
        if self.collect is not None:
            self.collect.dma_busy[ev.partner] += \
                pm.get_reply_service_time(p, ev.size)
            self._charge_links(st.pe, ev.partner,
                               pm.network_time(p, 0, dist), 0)
            self._charge_links(ev.partner, st.pe,
                               pm.network_time(p, ev.size, dist), ev.size)
        self.messages += 2
        self.bytes_on_wire += ev.size
        return True

    # ------------------------------------------------------------------
    # Waits
    # ------------------------------------------------------------------

    def _do_flag_wait(self, st: _PEState, ev: TraceEvent) -> bool:
        p = self.p
        if not st.attempted:
            self._apply_theft(st)
            self._busy(st, p.flag_check_prolog_time, "overhead")
            st.attempted = True
        target = ev.target
        if target <= 0:
            self._busy(st, p.flag_check_epilog_time, "overhead")
            return True
        times = self._flag_times.get(ev.flag, [])
        if len(times) < target:
            self._flag_waiters.setdefault(ev.flag, []).append((st.pe, target))
            return False
        if self.collect is not None:
            self.collect.flag_wait.observe(
                max(times[target - 1] - st.clock, 0.0))
        self._wait_until(st, times[target - 1])
        self._busy(st, p.flag_check_epilog_time, "overhead")
        return True

    # ------------------------------------------------------------------
    # SEND / RECEIVE
    # ------------------------------------------------------------------

    def _do_send(self, st: _PEState, ev: TraceEvent) -> bool:
        self._apply_theft(st)
        p = self.p
        self._busy(st, p.send_lib_time + pm.put_send_cpu_time(p, ev.size),
                   "overhead")
        depart = st.clock + pm.send_dma_setup_time(p)
        drain = pm.dma_drain_time(p, ev.size)
        # SEND is blocking: the library spins until the transfer leaves
        # the cell, and that wait counts as overhead (section 5.4, CG).
        blocked = depart + drain - st.clock
        if blocked > 0:
            self._busy(st, blocked, "overhead")
        dist = self._distance(st.pe, ev.partner)
        arrival = self._channel_arrival(
            st.pe, ev.partner, depart,
            depart + pm.network_time(p, ev.size, dist))
        ready = arrival + pm.recv_service_time(p, ev.size)
        self.pes[ev.partner].pending_theft += pm.recv_cpu_theft(p, ev.size)
        self._flow(st.pe, depart, ev.partner, arrival, "SEND", ev.size)
        if self.collect is not None:
            self.collect.dma_busy[st.pe] += drain
            self._charge_links(st.pe, ev.partner,
                               pm.network_time(p, ev.size, dist), ev.size)
        self._ring_arrival[ev.msg_id] = ready
        waiter = self._ring_waiters.pop(ev.msg_id, None)
        if waiter is not None:
            self._enqueue(waiter)
        self.messages += 1
        self.bytes_on_wire += ev.size
        return True

    def _do_recv(self, st: _PEState, ev: TraceEvent) -> bool:
        p = self.p
        if not st.attempted:
            self._apply_theft(st)
            self._busy(st, p.recv_lib_time, "overhead")
            st.attempted = True
        ready = self._ring_arrival.get(ev.msg_id)
        if ready is None:
            self._ring_waiters[ev.msg_id] = st.pe
            return False
        self._wait_until(st, ready)
        self._busy(st, p.recv_copy_byte_time * ev.size, "overhead")
        return True

    # ------------------------------------------------------------------
    # Barrier and reductions
    # ------------------------------------------------------------------

    def _group_size(self, ev: TraceEvent) -> int:
        if ev.group_size:
            return ev.group_size
        assert self.trace.groups is not None
        return self.trace.groups.size(ev.group)

    def _do_barrier(self, st: _PEState, ev: TraceEvent) -> bool:
        p = self.p
        gid = ev.group
        size = self._group_size(ev)
        if not st.attempted:
            self._apply_theft(st)
            self._busy(st, p.barrier_lib_time, "overhead")
            gen = self._barrier_gen.get((st.pe, gid), 0)
            self._barrier_gen[(st.pe, gid)] = gen + 1
            slot = ("bar", gid, gen)
            arrivals = self._barrier_arrivals.setdefault((gid, gen), {})
            arrivals[st.pe] = st.clock
            st.attempted = True
            st.current_slot = slot  # type: ignore[attr-defined]
            if len(arrivals) == size:
                if gid == 0:
                    establish = p.barrier_net_time
                else:
                    # Software group barrier over communication registers.
                    rounds = math.ceil(math.log2(size)) if size > 1 else 0
                    establish = rounds * p.group_barrier_step_time
                release = max(arrivals.values()) + establish
                self._barrier_release[(gid, gen)] = release
                for waiter in self._slot_waiters.pop(slot, []):
                    self._enqueue(waiter)
        slot = st.current_slot  # type: ignore[attr-defined]
        _, gid, gen = slot
        release = self._barrier_release.get((gid, gen))
        if release is None:
            self._slot_waiters.setdefault(slot, []).append(st.pe)
            return False
        if self.collect is not None:
            self.collect.barrier_wait.observe(max(release - st.clock, 0.0))
        self._wait_until(st, release)
        return True

    def _reduction_duration(self, ev: TraceEvent,
                            size: int) -> tuple[float, float]:
        """(total duration, per-member CPU share) of one reduction."""
        p = self.p
        if ev.kind is EventKind.GOP:
            rounds = math.ceil(math.log2(size)) if size > 1 else 0
            duration = rounds * p.gop_step_time
            return duration, duration
        # VGOP: pipelined ring reduction over ring buffers with blocking
        # SEND/RECEIVE (section 4.5).  The vector streams around the ring
        # twice (reduce lap + result lap); per-stage library setup and hop
        # latency pay 2*(P-1) times on the critical path, but the vector's
        # wire time, the combining arithmetic, and (software model only)
        # the ring-buffer copy pipeline and pay roughly once each lap.
        nbytes = ev.size
        flops = nbytes / 8.0
        exec_us = flops * SPARC_US_PER_FLOP * p.computation_factor
        copy_us = 0.0 if p.hardware_put_get else p.recv_copy_byte_time * nbytes
        stage_setup = (p.send_lib_time + pm.put_send_cpu_time(p, 0)
                       + p.recv_lib_time)
        hop = pm.network_time(p, 0, 1)
        stages = 2 * max(size - 1, 0)
        wire = 2.0 * nbytes * p.put_msg_time
        duration = stages * (stage_setup + hop) + wire + exec_us + copy_us
        member_cpu = 2.0 * stage_setup + exec_us + copy_us
        return duration, member_cpu

    def _do_reduction(self, st: _PEState, ev: TraceEvent) -> bool:
        gid = ev.group
        size = self._group_size(ev)
        if not st.attempted:
            self._apply_theft(st)
            gen = self._coll_gen.get((st.pe, gid), 0)
            self._coll_gen[(st.pe, gid)] = gen + 1
            slot = ("red", gid, gen)
            arrivals = self._coll_arrivals.setdefault((gid, gen), {})
            arrivals[st.pe] = st.clock
            st.attempted = True
            st.current_slot = slot  # type: ignore[attr-defined]
            if len(arrivals) == size:
                duration, _cpu = self._reduction_duration(ev, size)
                release = max(arrivals.values()) + duration
                self._coll_release[(gid, gen)] = release
                for waiter in self._slot_waiters.pop(slot, []):
                    self._enqueue(waiter)
        slot = st.current_slot  # type: ignore[attr-defined]
        _, gid, gen = slot
        release = self._coll_release.get((gid, gen))
        if release is None:
            self._slot_waiters.setdefault(slot, []).append(st.pe)
            return False
        _duration, cpu_share = self._reduction_duration(ev, size)
        # The member is busy for its share of the reduction and idles for
        # the rest of the establishment window.
        self._busy(st, min(cpu_share, max(release - st.clock, 0.0)),
                   "overhead")
        self._wait_until(st, release)
        if ev.kind is EventKind.VGOP:
            self.messages += self._group_size(ev) - 1
            self.bytes_on_wire += ev.size * (self._group_size(ev) - 1)
        return True
