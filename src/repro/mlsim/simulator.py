"""High-level MLSim interface.

Typical use, mirroring the paper's methodology end to end::

    machine = Machine(MachineConfig(num_cells=16))
    machine.run(my_program)                    # functional run -> trace
    outcome = simulate_models(machine.trace)   # timing replay x3 models
    print(outcome.table2_row())                # speedups vs the AP1000
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.mlsim.breakdown import MLSimResult
from repro.mlsim.engine import MLSimEngine
from repro.mlsim.params import (
    MLSimParams,
    ap1000_fast_params,
    ap1000_params,
    ap1000_plus_params,
)
from repro.network.topology import TorusTopology
from repro.trace.buffer import TraceBuffer


def _soa_enabled() -> bool:
    """The vectorized engine is the default; ``REPRO_MLSIM_ENGINE=
    reference`` forces the original event-object engine everywhere (the
    golden equivalence tests pin both to identical results)."""
    return os.environ.get("REPRO_MLSIM_ENGINE", "soa") != "reference"


def simulate(trace: TraceBuffer, params: MLSimParams,
             topology: TorusTopology | None = None, *,
             link_contention: bool = False,
             collect_metrics: bool = False) -> MLSimResult:
    """Replay ``trace`` under ``params`` and return the time breakdown.

    ``link_contention`` enables the optional shared-link serialization
    model (an extension beyond the paper's MLSim, which models the
    network purely with delay parameters).  ``collect_metrics`` attaches
    the :mod:`repro.obs` replay metric document (wait-latency
    histograms, per-link utilization, DMA busy time) to the result.

    Replay normally runs on the vectorized structure-of-arrays engine
    (:mod:`repro.mlsim.engine_soa`), which is bit-identical to
    :class:`MLSimEngine` and ~10x faster; the reference engine handles
    the link-contention extension (and timeline recording, which has its
    own entry points).
    """
    trace.coalesce_compute()
    if not link_contention and _soa_enabled():
        from repro.mlsim.engine_soa import replay_columns
        from repro.trace.soa import columns_from_buffer
        return replay_columns(columns_from_buffer(trace), params, topology,
                              collect_metrics=collect_metrics)
    return MLSimEngine(trace, params, topology,
                       link_contention=link_contention,
                       collect_metrics=collect_metrics).run()


@dataclass(frozen=True)
class ModelComparison:
    """The three machine models of section 5.3 run on one trace."""

    ap1000: MLSimResult
    ap1000_fast: MLSimResult   # "AP1000 with SPARC replaced by SuperSPARC"
    ap1000_plus: MLSimResult

    def table2_row(self) -> tuple[float, float]:
        """(AP1000+ speedup, software-model speedup), both vs the AP1000."""
        return (
            self.ap1000_plus.speedup_over(self.ap1000),
            self.ap1000_fast.speedup_over(self.ap1000),
        )

    def figure8_bars(self) -> dict[str, dict[str, float]]:
        """Figure 8: both fast models' breakdowns normalized so the
        AP1000+ total is 100%."""
        return {
            "AP1000+": self.ap1000_plus.normalized_to(self.ap1000_plus),
            "AP1000/SuperSPARC":
                self.ap1000_fast.normalized_to(self.ap1000_plus),
        }


def simulate_models(trace: TraceBuffer,
                    topology: TorusTopology | None = None) -> ModelComparison:
    """Run all three of the paper's machine models on one trace."""
    return ModelComparison(
        ap1000=simulate(trace, ap1000_params(), topology),
        ap1000_fast=simulate(trace, ap1000_fast_params(), topology),
        ap1000_plus=simulate(trace, ap1000_plus_params(), topology),
    )
