"""MLSim result types: per-PE time breakdown in the paper's four buckets.

Section 5.3 defines the buckets exactly:

* **Execution time** — processor execution time, excluding run-time
  system time, library overhead, and idle time.
* **Run-time system** — time for the VPP Fortran run-time system to
  calculate addresses for PUT/GET operations, find stride patterns, etc.
* **Overhead** — time spent executing communication library routines,
  excluding idle time; processor execution is blocked meanwhile.
* **Idle time** — waiting for messages in RECEIVE, waiting for flag
  updates in flag checks, and waiting for barrier establishment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.errors import SimulationError


@dataclass
class PEBreakdown:
    """Accumulated time buckets of one processing element (microseconds)."""

    execution: float = 0.0
    rtsys: float = 0.0
    overhead: float = 0.0
    idle: float = 0.0
    clock: float = 0.0

    @property
    def accounted(self) -> float:
        return self.execution + self.rtsys + self.overhead + self.idle


@dataclass
class MLSimResult:
    """Outcome of replaying one trace under one parameter set."""

    model_name: str
    per_pe: list[PEBreakdown] = field(default_factory=list)
    messages: int = 0
    bytes_on_wire: int = 0
    #: Replay metric document (repro.obs); None unless the engine ran
    #: with ``collect_metrics=True``.
    metrics: dict[str, Any] | None = None

    @property
    def num_pes(self) -> int:
        return len(self.per_pe)

    @property
    def elapsed_us(self) -> float:
        """Makespan: the last PE's finishing time."""
        return max((pe.clock for pe in self.per_pe), default=0.0)

    def _mean(self, attr: str) -> float:
        if not self.per_pe:
            return 0.0
        return sum(getattr(pe, attr) for pe in self.per_pe) / len(self.per_pe)

    @property
    def mean_execution(self) -> float:
        return self._mean("execution")

    @property
    def mean_rtsys(self) -> float:
        return self._mean("rtsys")

    @property
    def mean_overhead(self) -> float:
        return self._mean("overhead")

    @property
    def mean_idle(self) -> float:
        return self._mean("idle")

    @property
    def mean_total(self) -> float:
        return self._mean("accounted")

    def breakdown_fractions(self) -> dict[str, float]:
        """Mean bucket shares of the mean total (sums to 1)."""
        total = self.mean_total or 1.0
        return {
            "execution": self.mean_execution / total,
            "rtsys": self.mean_rtsys / total,
            "overhead": self.mean_overhead / total,
            "idle": self.mean_idle / total,
        }

    def normalized_to(self, baseline: "MLSimResult") -> dict[str, float]:
        """Figure 8 numbers: this model's mean buckets as percentages of
        the baseline's (the AP1000+'s) mean total time."""
        base = baseline.mean_total or 1.0
        return {
            "execution": 100.0 * self.mean_execution / base,
            "rtsys": 100.0 * self.mean_rtsys / base,
            "overhead": 100.0 * self.mean_overhead / base,
            "idle": 100.0 * self.mean_idle / base,
            "total": 100.0 * self.mean_total / base,
        }

    def speedup_over(self, baseline: "MLSimResult") -> float:
        """Table 2 numbers: baseline elapsed / this model's elapsed."""
        if self.elapsed_us == 0:
            raise SimulationError(
                f"model {self.model_name!r} has zero elapsed time; speedup "
                "is undefined (empty or compute-free trace)")
        return baseline.elapsed_us / self.elapsed_us
