"""MLSim parameter sets (Figure 6).

MLSim "simulates communication behavior based on the trace information
and parameter file ..., preserving the order of message communications
and barrier synchronization between processors with a delay parameter.
The computation parameter is given as a ratio to SPARC performance and
communication parameters are given in microseconds."

Figure 6 prints the two parameter files the paper used; Figure 7's legend
names the full component set of the PUT model.  Parameters shown in
Figure 6 carry the paper's exact values; the remaining components (marked
*estimated* below) are set from the hardware descriptions in sections 4
and 5 (e.g. the AP1000+ PUT issue cost is "the time for 8 store
instructions, in other words, 8 clock cycles" at 50 MHz = 0.16 us).

All times are microseconds; ``*_msg_*`` and ``*_byte_*`` rates are
microseconds **per byte**.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from pathlib import Path
from typing import IO

from repro.core.errors import ConfigurationError


@dataclass(frozen=True)
class MLSimParams:
    """One machine model's timing parameters."""

    name: str
    #: Ratio to SPARC performance: 1.0 = AP1000's SPARC, 0.125 = SuperSPARC
    #: (the paper assumes the SuperSPARC is 8x the SPARC).
    computation_factor: float
    #: True when PUT/GET message handling is done by the MSC+ hardware;
    #: False for the AP1000's software (system call + interrupt) path.
    hardware_put_get: bool

    # ---- network (Figure 6) ------------------------------------------
    network_prolog_time: float = 0.16
    network_delay_time: float = 0.16          # per hop
    network_epilog_time: float = 0.16         # estimated
    put_msg_time: float = 0.05                # per byte on the wire/DMA

    # ---- PUT/GET send side (Figure 6 + Figure 7 legend) --------------
    put_prolog_time: float = 0.0
    put_enqueue_time: float = 0.0             # estimated
    put_msg_post_time: float = 0.0            # per byte (cache post, sw only)
    put_dma_set_time: float = 0.0
    put_epilog_time: float = 0.0
    send_complete_time: float = 0.0           # estimated (sw interrupt)
    send_complete_flag_time: float = 0.0      # estimated

    # ---- PUT/GET receive side -----------------------------------------
    intr_rtc_time: float = 0.0
    recv_msg_flush_time: float = 0.0          # per byte (cache invalidate)
    recv_dma_set_time: float = 0.0
    recv_complete_time: float = 0.0           # estimated
    recv_complete_flag_time: float = 0.0      # estimated

    # ---- flag checking --------------------------------------------------
    flag_check_prolog_time: float = 0.0       # estimated
    flag_check_epilog_time: float = 0.0       # estimated

    # ---- barriers and reductions (estimated from sections 4.4-4.5) ----
    barrier_lib_time: float = 0.0
    barrier_net_time: float = 2.0
    gop_step_time: float = 0.0                # one store/execute/load round
    group_barrier_step_time: float = 0.0

    # ---- SEND/RECEIVE model (estimated) --------------------------------
    send_lib_time: float = 0.0
    recv_lib_time: float = 0.0
    recv_copy_byte_time: float = 0.04         # ring buffer -> user area

    # ---- shared memory and communication registers (estimated) --------
    remote_access_time: float = 0.0
    creg_access_time: float = 0.0

    def __post_init__(self) -> None:
        for f in fields(self):
            value = getattr(self, f.name)
            if f.type == "float" and value < 0:
                raise ConfigurationError(f"parameter {f.name} is negative")
        if not 0 < self.computation_factor:
            raise ConfigurationError("computation_factor must be positive")

    def with_overrides(self, **overrides) -> "MLSimParams":
        """A copy with some parameters replaced (for ablations)."""
        return replace(self, **overrides)


def ap1000_params() -> MLSimParams:
    """The AP1000 model of Figure 6: 25 MHz SPARC, software handling."""
    return MLSimParams(
        name="AP1000",
        computation_factor=1.00,
        hardware_put_get=False,
        # Figure 6 values
        put_prolog_time=20.0,
        put_epilog_time=15.0,
        put_msg_time=0.05,
        put_dma_set_time=15.0,
        put_msg_post_time=0.04,
        intr_rtc_time=20.0,
        recv_msg_flush_time=0.04,
        recv_dma_set_time=15.0,
        # estimated components
        put_enqueue_time=5.0,
        send_complete_time=10.0,
        send_complete_flag_time=2.0,
        recv_complete_time=10.0,
        recv_complete_flag_time=2.0,
        flag_check_prolog_time=2.0,
        flag_check_epilog_time=1.0,
        barrier_lib_time=10.0,
        gop_step_time=60.0,
        group_barrier_step_time=60.0,
        send_lib_time=30.0,
        recv_lib_time=20.0,
        recv_copy_byte_time=0.04,
        remote_access_time=10.0,
        creg_access_time=5.0,
    )


#: Parameters that are processor instructions (library code, system
#: calls, interrupt handlers): they speed up with the processor.  Wire
#: time, per-hop delay, the MSC+ DMA engine, and the *per-byte* software
#: costs (cache posting/flushing, ring-buffer copies — memory-bandwidth
#: bound, not instruction bound) do not.
_CPU_TIME_FIELDS = (
    "put_prolog_time", "put_enqueue_time",
    "put_dma_set_time", "put_epilog_time", "send_complete_time",
    "send_complete_flag_time", "intr_rtc_time",
    "recv_dma_set_time", "recv_complete_time", "recv_complete_flag_time",
    "flag_check_prolog_time", "flag_check_epilog_time", "barrier_lib_time",
    "gop_step_time", "group_barrier_step_time", "send_lib_time",
    "recv_lib_time", "remote_access_time",
    "creg_access_time",
)


#: Per-byte software costs (cache post/flush, ring-buffer copies): bound
#: by the memory system, which improved less than the core between the
#: SPARC and SuperSPARC generations.
_MEMORY_TIME_FIELDS = (
    "put_msg_post_time", "recv_msg_flush_time", "recv_copy_byte_time",
)

#: Memory-system speedup accompanying the 8x processor upgrade (the
#: SPARCstation 10's memory path is roughly 2-3x the SPARCstation 1+'s).
MEMORY_SPEEDUP_FACTOR = 0.375


def scale_processor(params: MLSimParams, factor: float,
                    name: str | None = None,
                    memory_factor: float | None = None) -> MLSimParams:
    """Replace the processor with one ``1/factor`` times faster.

    Scales the computation factor and every software (CPU-instruction)
    time component by ``factor``; per-byte software costs scale by the
    (smaller) memory improvement ``memory_factor``; wire and MSC+ DMA
    times stay fixed.  With hardware PUT/GET the DMA-setup times belong
    to the MSC+ and also stay fixed.
    """
    if memory_factor is None:
        memory_factor = max(factor, MEMORY_SPEEDUP_FACTOR)
    overrides = {"computation_factor": params.computation_factor * factor}
    for field_name in _CPU_TIME_FIELDS:
        if params.hardware_put_get and field_name in (
                "put_dma_set_time", "recv_dma_set_time"):
            continue
        overrides[field_name] = getattr(params, field_name) * factor
    for field_name in _MEMORY_TIME_FIELDS:
        overrides[field_name] = getattr(params, field_name) * memory_factor
    if name is not None:
        overrides["name"] = name
    return params.with_overrides(**overrides)


def ap1000_fast_params() -> MLSimParams:
    """The paper's second model: "AP1000 with SPARC replaced by
    SuperSPARC" — computation *and* software message handling run on the
    eight-times-faster processor (per-byte costs only gain the ~2.7x
    memory improvement), but handling is still done in software (system
    calls and interrupts), and wire/DMA speeds are unchanged.  This is
    why the model realizes "only 70% of processor improvement"."""
    return scale_processor(ap1000_params(), 0.125, name="AP1000/SuperSPARC")


def ap1000_plus_params() -> MLSimParams:
    """The AP1000+ model of Figure 6: SuperSPARC + MSC+ hardware."""
    return MLSimParams(
        name="AP1000+",
        computation_factor=0.125,
        hardware_put_get=True,
        # Figure 6 values
        put_prolog_time=1.00,
        put_epilog_time=0.00,
        put_msg_time=0.05,
        put_dma_set_time=0.50,
        put_msg_post_time=0.00,
        intr_rtc_time=0.00,
        recv_msg_flush_time=0.00,
        recv_dma_set_time=0.50,
        # estimated components
        put_enqueue_time=0.16,   # 8 stores at 50 MHz (section 4.1)
        send_complete_time=0.0,
        send_complete_flag_time=0.1,
        recv_complete_time=0.0,
        recv_complete_flag_time=0.1,
        flag_check_prolog_time=0.5,
        flag_check_epilog_time=0.2,
        barrier_lib_time=2.0,
        gop_step_time=4.0,       # comm-register store/execute/load round
        group_barrier_step_time=4.0,
        send_lib_time=3.0,
        recv_lib_time=3.0,
        recv_copy_byte_time=0.04,
        remote_access_time=2.0,
        creg_access_time=0.5,
    )


PRESETS = {
    "ap1000": ap1000_params,
    "ap1000-fast": ap1000_fast_params,
    "ap1000+": ap1000_plus_params,
}


def preset(name: str) -> MLSimParams:
    """Look up a parameter preset by name."""
    try:
        return PRESETS[name.lower()]()
    except KeyError:
        raise ConfigurationError(
            f"unknown parameter preset {name!r}; choose from "
            f"{sorted(PRESETS)}") from None


# ----------------------------------------------------------------------
# Parameter file format (the Figure 6 text format)
# ----------------------------------------------------------------------

def format_params(params: MLSimParams) -> str:
    """Render parameters in the Figure 6 file format."""
    lines = [f"# {params.name} model", "#"]
    lines.append(f"computation_factor {params.computation_factor:.4g}")
    lines.append(f"hardware_put_get {int(params.hardware_put_get)}")
    for f in fields(params):
        if f.name in ("name", "computation_factor", "hardware_put_get"):
            continue
        lines.append(f"{f.name} {getattr(params, f.name):.4g}")
    return "\n".join(lines) + "\n"


def parse_params(source: str | Path | IO[str], *,
                 name: str = "custom") -> MLSimParams:
    """Parse a Figure 6 style parameter file.

    Lines are ``key value`` pairs; ``#`` starts a comment.  Unknown keys
    are rejected — a typo in a timing parameter should fail loudly.
    """
    if isinstance(source, (str, Path)) and "\n" not in str(source):
        text = Path(source).read_text(encoding="utf-8")
    elif isinstance(source, str):
        text = source
    else:
        text = source.read()  # type: ignore[union-attr]
    known = {f.name for f in fields(MLSimParams)} - {"name"}
    values: dict[str, float | bool] = {}
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) != 2:
            raise ConfigurationError(
                f"parameter file line {line_no}: expected 'key value', "
                f"got {raw!r}")
        key, value = parts
        if key not in known:
            raise ConfigurationError(
                f"parameter file line {line_no}: unknown parameter {key!r}")
        if key == "hardware_put_get":
            values[key] = bool(int(value))
        else:
            values[key] = float(value)
    if "computation_factor" not in values:
        raise ConfigurationError("parameter file missing computation_factor")
    if "hardware_put_get" not in values:
        raise ConfigurationError("parameter file missing hardware_put_get")
    return MLSimParams(name=name, **values)  # type: ignore[arg-type]
