"""The PUT/GET communication model (Figure 7).

Figure 7 decomposes one PUT on the AP1000 into 18 components across four
timelines (user, system, DMA/network, remote system/user).  This module
implements that decomposition as pure functions of
(:class:`~repro.mlsim.params.MLSimParams`, message size, hop distance), for
both machine models:

* **software** (AP1000): the user program traps into the system
  (``put_prolog``), the kernel enqueues, posts the cached data to memory,
  sets up the DMA and returns (``put_epilog``); message arrival interrupts
  the *receiving* processor, which flushes/invalidates the destination
  range and sets up the receive DMA — all of it stealing CPU time;
* **hardware** (AP1000+): the user program writes 8 parameter words to the
  MSC+ queue (``put_enqueue``) and moves on; DMA setup, transfer, cache
  invalidation, and the combined flag update all happen in the MSC+/MC.

The timing engine composes these functions; the Figure 7 benchmark prints
them component by component.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mlsim.params import MLSimParams


def put_send_cpu_time(p: MLSimParams, size: int) -> float:
    """Processor time consumed by issuing a PUT of ``size`` bytes.

    Matches section 5.1's formula for the AP1000:
    ``put_prolog + put_enqueue + put_msg_post*size + put_dma_set +
    put_epilog``; on the AP1000+ only the prolog (parameter preparation)
    and enqueue (8 stores) touch the processor.
    """
    cpu = p.put_prolog_time + p.put_enqueue_time
    if not p.hardware_put_get:
        cpu += p.put_msg_post_time * size
        cpu += p.put_dma_set_time
    cpu += p.put_epilog_time
    return cpu


def get_send_cpu_time(p: MLSimParams, size: int) -> float:
    """Processor time to issue a GET request (no outgoing payload)."""
    return put_send_cpu_time(p, 0)


def send_dma_setup_time(p: MLSimParams) -> float:
    """Off-CPU DMA setup by the MSC+ (zero in the software model, where
    setup already happened on the CPU)."""
    return p.put_dma_set_time if p.hardware_put_get else 0.0


def dma_drain_time(p: MLSimParams, size: int) -> float:
    """Time for the send DMA to stream the payload out of memory."""
    return p.put_msg_time * size


def network_time(p: MLSimParams, size: int, distance: int) -> float:
    """Wire time: ``network_prolog + network_delay*distance +
    put_msg_time*size + network_epilog`` (Figure 7, components 15-18)."""
    return (p.network_prolog_time
            + p.network_delay_time * max(distance, 0)
            + p.put_msg_time * size
            + p.network_epilog_time)


def send_complete_to_flag_time(p: MLSimParams) -> float:
    """From send-DMA completion to the send flag being incremented.

    Software: a send-complete interrupt runs a handler which updates the
    flag.  Hardware: the MSC+ asks the MC's incrementer directly.
    """
    return p.send_complete_time + p.send_complete_flag_time


def send_complete_cpu_theft(p: MLSimParams) -> float:
    """Processor time stolen on the *sender* by send completion
    (the interrupt service; zero with hardware handling)."""
    return 0.0 if p.hardware_put_get else p.send_complete_time


def recv_service_time(p: MLSimParams, size: int) -> float:
    """From message arrival to receive-DMA completion.

    Software (section 5.1): ``intr_rtc + recv_msg_flush*size +
    recv_dma_set`` plus the completion handler; hardware: the MSC+ parses
    the header and sets the receive DMA, invalidating cached lines on the
    fly.
    """
    if p.hardware_put_get:
        return p.recv_dma_set_time
    return (p.intr_rtc_time
            + p.recv_msg_flush_time * size
            + p.recv_dma_set_time
            + p.recv_complete_time)


def recv_flag_update_time(p: MLSimParams, size: int) -> float:
    """From message arrival to the receive flag being incremented."""
    return recv_service_time(p, size) + p.recv_complete_flag_time


def recv_cpu_theft(p: MLSimParams, size: int) -> float:
    """Processor time stolen on the *receiver* per arriving PUT/GET-reply
    (zero with hardware handling — "data reception from a network does not
    prevent user program execution")."""
    if p.hardware_put_get:
        return 0.0
    return recv_service_time(p, size)


def get_reply_service_time(p: MLSimParams, size: int) -> float:
    """At the GET target: from request arrival to the reply entering the
    network.  The MSC+ answers from its reply queue; the software model
    needs an interrupt, a queue operation, and a software DMA setup."""
    if p.hardware_put_get:
        return p.recv_dma_set_time + p.put_dma_set_time
    return (p.intr_rtc_time
            + p.recv_dma_set_time
            + p.put_msg_post_time * size
            + p.put_dma_set_time)


def get_reply_cpu_theft(p: MLSimParams, size: int) -> float:
    """Processor time stolen at the GET *target* to serve the request."""
    return 0.0 if p.hardware_put_get else get_reply_service_time(p, size)


def flag_check_cpu_time(p: MLSimParams) -> float:
    """Library cost of one flag-check call (components 13-14)."""
    return p.flag_check_prolog_time + p.flag_check_epilog_time


@dataclass(frozen=True)
class PutTimeline:
    """The full one-message timeline of Figure 7, for the benchmark."""

    send_cpu: float              # (1)-(5): processor busy issuing
    dma_setup: float             # off-CPU MSC+ setup (hardware only)
    dma_drain: float             # DMA streams payload to the network
    network: float               # (15)-(18)
    send_flag_at: float          # send flag increment time (from t=0)
    arrival_at: float            # last byte arrives at the receiver
    recv_service: float          # (8)-(11) on arrival
    recv_flag_at: float          # receive flag increment time
    sender_cpu_total: float      # CPU time consumed on the sender
    receiver_cpu_total: float    # CPU time stolen on the receiver


def put_timeline(p: MLSimParams, size: int, distance: int) -> PutTimeline:
    """Compose the complete PUT timeline for one message."""
    send_cpu = put_send_cpu_time(p, size)
    setup = send_dma_setup_time(p)
    depart = send_cpu + setup
    drain = dma_drain_time(p, size)
    net = network_time(p, size, distance)
    send_flag_at = depart + drain + send_complete_to_flag_time(p)
    arrival = depart + net
    service = recv_service_time(p, size)
    recv_flag_at = arrival + recv_flag_update_time(p, size)
    return PutTimeline(
        send_cpu=send_cpu,
        dma_setup=setup,
        dma_drain=drain,
        network=net,
        send_flag_at=send_flag_at,
        arrival_at=arrival,
        recv_service=service,
        recv_flag_at=recv_flag_at,
        sender_cpu_total=send_cpu + send_complete_cpu_theft(p),
        receiver_cpu_total=recv_cpu_theft(p, size),
    )
