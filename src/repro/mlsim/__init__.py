"""MLSim — the message level simulator (section 5).

Trace-driven timing replay of functional-machine traces under the
paper's machine models: parameter files (Figure 6), the PUT communication
model (Figure 7), a discrete-event engine, and the four-bucket time
breakdown of section 5.3."""

from repro.mlsim.breakdown import MLSimResult, PEBreakdown
from repro.mlsim.engine import MLSimEngine
from repro.mlsim.params import (
    PRESETS,
    MLSimParams,
    ap1000_fast_params,
    ap1000_params,
    ap1000_plus_params,
    format_params,
    parse_params,
    preset,
)
from repro.mlsim.put_model import (
    PutTimeline,
    dma_drain_time,
    flag_check_cpu_time,
    get_reply_service_time,
    get_send_cpu_time,
    network_time,
    put_send_cpu_time,
    put_timeline,
    recv_cpu_theft,
    recv_flag_update_time,
    recv_service_time,
    send_dma_setup_time,
)
from repro.mlsim.simulator import ModelComparison, simulate, simulate_models
from repro.mlsim.timeline import Span, Timeline, render_timeline

__all__ = [
    "MLSimResult",
    "PEBreakdown",
    "MLSimEngine",
    "PRESETS",
    "MLSimParams",
    "ap1000_fast_params",
    "ap1000_params",
    "ap1000_plus_params",
    "format_params",
    "parse_params",
    "preset",
    "PutTimeline",
    "dma_drain_time",
    "flag_check_cpu_time",
    "get_reply_service_time",
    "get_send_cpu_time",
    "network_time",
    "put_send_cpu_time",
    "put_timeline",
    "recv_cpu_theft",
    "recv_flag_update_time",
    "recv_service_time",
    "send_dma_setup_time",
    "ModelComparison",
    "simulate",
    "simulate_models",
    "Span",
    "Timeline",
    "render_timeline",
]
