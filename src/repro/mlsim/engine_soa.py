"""Vectorized MLSim replay over structure-of-arrays traces.

Bit-for-bit equivalent to :class:`repro.mlsim.engine.MLSimEngine` (the
reference implementation, kept for the timeline and link-contention
extensions and for the golden equivalence tests), but restructured for
throughput:

* the trace is decoded once into flat column arrays
  (:mod:`repro.trace.soa`); per-trace structure — kind partitions, torus
  hop distances, physical link routes — is computed once and shared
  across all parameter presets of a bench grid;
* every parameter-dependent cost — the Figure 7 PUT decomposition, wire
  times, reduction durations, barrier establishment — is precomputed
  for *all* events of a kind at once with numpy expressions that
  replicate the reference's float operation order exactly (IEEE-754
  double arithmetic is deterministic given the same expression tree,
  and numpy's elementwise float64 ops produce the same bits as the
  equivalent Python float expressions);
* the remaining sequential pass — the part that carries cross-PE
  ordering: FIFO channel clamping, flag wakeups, barrier generations,
  CPU-theft application — runs over plain Python lists with no
  per-event object construction, attribute access, or function calls.

Scheduling replicates the reference engine's runnable-deque discipline
event for event.  Every scheduling decision (park, wake, completion) is
a *structural* predicate — flag counts, arrival counts, queue
membership — never a float comparison, so wake order and therefore
every float accumulation order is identical to the reference engine,
which is what the golden equivalence tests in
``tests/mlsim/test_soa_equivalence.py`` pin down.
"""

from __future__ import annotations

import math
from bisect import insort
from collections import deque

import numpy as np

from repro.core.errors import SimulationError
from repro.machine.config import SPARC_US_PER_FLOP
from repro.mlsim.breakdown import MLSimResult, PEBreakdown
from repro.mlsim.params import MLSimParams
from repro.network.topology import TorusTopology
from repro.obs.registry import REPLAY_SCHEMA, Histogram
from repro.trace.events import EventKind
from repro.trace.soa import TraceColumns

# Interpreter opcodes: EventKind collapsed to what the replay loop
# distinguishes (GOP/VGOP share a handler, as do the CREG pair and the
# three robustness instants).
_COMPUTE = 0
_RTSYS = 1
_PUT = 2
_GET = 3
_FLAG_WAIT = 4
_SEND = 5
_RECV = 6
_BARRIER = 7
_REDUCTION = 8
_REMOTE_LOAD = 9
_REMOTE_STORE = 10
_CREG = 11
_INSTANT = 12
_PHASE = 13

_OPCODE = {
    int(EventKind.COMPUTE): _COMPUTE,
    int(EventKind.RTSYS): _RTSYS,
    int(EventKind.PUT): _PUT,
    int(EventKind.GET): _GET,
    int(EventKind.FLAG_WAIT): _FLAG_WAIT,
    int(EventKind.SEND): _SEND,
    int(EventKind.RECV): _RECV,
    int(EventKind.BARRIER): _BARRIER,
    int(EventKind.GOP): _REDUCTION,
    int(EventKind.VGOP): _REDUCTION,
    int(EventKind.REMOTE_LOAD): _REMOTE_LOAD,
    int(EventKind.REMOTE_STORE): _REMOTE_STORE,
    int(EventKind.CREG_STORE): _CREG,
    int(EventKind.CREG_LOAD): _CREG,
    int(EventKind.RETRY): _INSTANT,
    int(EventKind.TIMEOUT): _INSTANT,
    int(EventKind.SPILL): _INSTANT,
    int(EventKind.PHASE): _PHASE,
}

_INSTANT_NAME = {
    int(EventKind.RETRY): "RETRY",
    int(EventKind.TIMEOUT): "TIMEOUT",
    int(EventKind.SPILL): "SPILL",
}

#: log2 bucket count of repro.obs.registry.Histogram (bounds 2^0..2^20
#: plus overflow); the interpreter computes bucket indices with frexp
#: instead of the Histogram's linear scan.
_HIST_OVERFLOW = 21


def _torus_distances(topology: TorusTopology, src: np.ndarray,
                     dst: np.ndarray) -> np.ndarray:
    """Vectorized :meth:`TorusTopology.distance`: per-ring shortest hops
    on the x ring plus the y ring (row-major cell numbering)."""
    w, h = topology.width, topology.height
    sx, sy = src % w, src // w
    dx, dy = dst % w, dst // w
    fx = (dx - sx) % w
    fy = (dy - sy) % h
    return np.minimum(fx, w - fx) + np.minimum(fy, h - fy)


def _log2_rounds(sizes: np.ndarray) -> dict[int, int]:
    """ceil(log2(size)) per unique group size, in exact Python math
    (``math.log2`` on small ints is correctly rounded; no numpy float
    detour whose rounding we would have to trust)."""
    return {int(s): (math.ceil(math.log2(int(s))) if s > 1 else 0)
            for s in np.unique(sizes)}


class _TraceIndex:
    """Preset-independent structure of one decoded trace.

    Built once per (columns, topology) pair and shared by every
    per-preset :class:`_Program`: event-kind partitions, hop distances
    for communication events, the integer operand lists of the
    interpreter (none of which depend on timing parameters), and —
    materialized lazily because only metric collection needs it — each
    communication event's route as a tuple of dense physical-link ids.
    """

    __slots__ = ("columns", "topology", "by_kind", "dist", "pe_src",
                 "ops", "starts", "i0", "i1", "i2", "i3",
                 "instant_counts", "_link_plan", "link_table")

    def __init__(self, columns: TraceColumns,
                 topology: TorusTopology) -> None:
        self.columns = columns
        self.topology = topology
        kind = columns.kind
        self.by_kind = {k: np.nonzero(kind == k)[0]
                        for k in np.unique(kind).tolist()}
        pe_of_all = np.searchsorted(columns.starts,
                                    np.arange(len(kind), dtype=np.int64),
                                    side="right") - 1
        self.dist = {}
        self.pe_src = {}
        for k in (int(EventKind.PUT), int(EventKind.GET),
                  int(EventKind.SEND), int(EventKind.REMOTE_LOAD)):
            idx = self.by_kind.get(k)
            if idx is not None and len(idx):
                src = pe_of_all[idx]
                self.pe_src[k] = src
                self.dist[k] = _torus_distances(topology, src,
                                                columns.partner[idx])
        table = np.full(max(_OPCODE) + 1, -1, dtype=np.int64)
        for k, op in _OPCODE.items():
            table[k] = op
        self.ops = table[kind].tolist()
        self.starts = columns.starts.tolist()
        # Integer operands (see the _Program docstring table).  The
        # generic layout is the PUT/GET one; kinds whose operands differ
        # are rewritten with vectorized index assignments.  ``tolist``
        # yields plain Python ints, so the interpreter never touches
        # numpy scalars.
        i0 = columns.partner.copy()
        i1 = columns.size.copy()
        i2 = columns.send_flag.copy()
        i3 = columns.recv_flag.copy()
        rewrites = (
            (EventKind.FLAG_WAIT,
             (columns.flag, columns.target, 0, 0)),
            (EventKind.SEND,
             (None, None, columns.msg_id, 0)),
            (EventKind.RECV,
             (columns.msg_id, 0, 0, 0)),
            (EventKind.BARRIER,
             (columns.group, 0, columns.group_size, 0)),
            (EventKind.GOP,
             (columns.group, None, columns.group_size, 0)),
            (EventKind.VGOP,
             (columns.group, None, columns.group_size, 1)),
        )
        for k, (v0, v1, v2, v3) in rewrites:
            idx = self.by_kind.get(int(k))
            if idx is not None and len(idx):
                for slot, value in ((i0, v0), (i1, v1), (i2, v2), (i3, v3)):
                    if value is None:
                        continue  # keep the generic operand
                    slot[idx] = value[idx] if isinstance(value, np.ndarray) \
                        else value
        self.i0 = i0.tolist()
        self.i1 = i1.tolist()
        self.i2 = i2.tolist()
        self.i3 = i3.tolist()
        # Robustness instants never affect timing; count them up front.
        self.instant_counts = {"RETRY": 0, "TIMEOUT": 0, "SPILL": 0}
        for k, name in _INSTANT_NAME.items():
            idx = self.by_kind.get(k)
            if idx is not None:
                self.instant_counts[name] = len(idx)
        self._link_plan = None
        self.link_table: list[tuple[int, int]] = []

    def link_plan(self) -> list:
        """Per-event link-id routes for metric collection.

        ``plan[i]`` is ``None`` for non-communication events, a tuple of
        link ids for PUT/SEND (empty for self-sends), and a
        ``(request_route, reply_route)`` pair for GET.  Link ids are
        dense indices into ``link_table``.
        """
        if self._link_plan is not None:
            return self._link_plan
        columns, topology = self.columns, self.topology
        plan: list = [None] * len(columns.kind)
        link_ids: dict[tuple[int, int], int] = {}
        route_cache: dict[tuple[int, int], tuple[int, ...]] = {}

        def lids(src: int, dst: int) -> tuple[int, ...]:
            if src == dst:
                return ()
            got = route_cache.get((src, dst))
            if got is None:
                ids = []
                prev = src
                for node in topology.route(src, dst):
                    key = (prev, node)
                    lid = link_ids.get(key)
                    if lid is None:
                        lid = len(self.link_table)
                        link_ids[key] = lid
                        self.link_table.append(key)
                    ids.append(lid)
                    prev = node
                got = tuple(ids)
                route_cache[(src, dst)] = got
            return got

        partner = columns.partner
        for k in (int(EventKind.PUT), int(EventKind.SEND)):
            idx = self.by_kind.get(k)
            if idx is not None and len(idx):
                src = self.pe_src[k]
                for j, i in enumerate(idx.tolist()):
                    plan[i] = lids(int(src[j]), int(partner[i]))
        idx = self.by_kind.get(int(EventKind.GET))
        if idx is not None and len(idx):
            src = self.pe_src[int(EventKind.GET)]
            for j, i in enumerate(idx.tolist()):
                s, d = int(src[j]), int(partner[i])
                plan[i] = (lids(s, d), lids(d, s))
        self._link_plan = plan
        return plan


def trace_index(columns: TraceColumns,
                topology: TorusTopology | None = None) -> _TraceIndex:
    """The cached :class:`_TraceIndex` of ``columns``."""
    if topology is None:
        topology = TorusTopology.for_cells(columns.num_pes)
    cached = getattr(columns, "_soa_index", None)
    if cached is not None and (cached.topology.width == topology.width
                               and cached.topology.height == topology.height):
        return cached
    index = _TraceIndex(columns, topology)
    columns._soa_index = index  # type: ignore[attr-defined]
    return index


class _Program:
    """One (trace, params) pair compiled to flat operand lists.

    The preset-independent integer operand slots live on the shared
    :class:`_TraceIndex`:

    ========  =======  =======  ==========  =========
    opcode    i0       i1       i2          i3
    ========  =======  =======  ==========  =========
    PUT/GET   partner  size     send_flag   recv_flag
    SEND      partner  size     msg_id      --
    RECV      msg_id   --       --          --
    FLAG      flag     target   --          --
    BARRIER   group    --       group_size  --
    GOP/VGOP  group    size     group_size  is_vgop
    RSTORE    partner  size     --          --
    ========  =======  =======  ==========  =========

    Float slots carry the precomputed per-event costs; see the per-kind
    blocks below.
    """

    __slots__ = ("index", "f0", "f1", "f2", "f3", "f4", "f5")

    def __init__(self, index: _TraceIndex, params: MLSimParams) -> None:
        self.index = index
        columns = index.columns
        p = params
        hw = p.hardware_put_get
        kind = columns.kind
        total = len(kind)
        by_kind = index.by_kind
        f0 = np.zeros(total)
        f1 = np.zeros(total)
        f2 = np.zeros(total)
        f3 = np.zeros(total)
        f4 = np.zeros(total)
        f5 = np.zeros(total)

        def idx_of(k: EventKind) -> np.ndarray:
            got = by_kind.get(int(k))
            return got if got is not None else np.empty(0, dtype=np.int64)

        # Vectorized twins of repro.mlsim.put_model, replicating each
        # function's float accumulation order exactly.
        def put_send_cpu(size):
            cpu = p.put_prolog_time + p.put_enqueue_time
            if not hw:
                cpu = cpu + p.put_msg_post_time * size
                cpu = cpu + p.put_dma_set_time
            cpu = cpu + p.put_epilog_time
            return cpu

        def network(size, dist):
            return (p.network_prolog_time
                    + p.network_delay_time * np.maximum(dist, 0)
                    + p.put_msg_time * size
                    + p.network_epilog_time)

        def recv_service(size):
            if hw:
                return p.recv_dma_set_time + np.zeros_like(size, dtype=float)
            return (p.intr_rtc_time
                    + p.recv_msg_flush_time * size
                    + p.recv_dma_set_time
                    + p.recv_complete_time)

        def recv_flag_update(size):
            return recv_service(size) + p.recv_complete_flag_time

        def recv_theft(size):
            if hw:
                return np.zeros_like(size, dtype=float)
            return recv_service(size)

        def get_reply_service(size):
            if hw:
                return (p.recv_dma_set_time + p.put_dma_set_time
                        + np.zeros_like(size, dtype=float))
            return (p.intr_rtc_time
                    + p.recv_dma_set_time
                    + p.put_msg_post_time * size
                    + p.put_dma_set_time)

        def get_reply_theft(size):
            if hw:
                return np.zeros_like(size, dtype=float)
            return get_reply_service(size)

        for k in (EventKind.COMPUTE, EventKind.RTSYS):
            idx = idx_of(k)
            if len(idx):
                f0[idx] = columns.work[idx] * p.computation_factor

        # PUT: f0 send cpu, f1 dma drain, f2 wire, f3 arrival->recv-flag,
        # f4 receiver theft.
        idx = idx_of(EventKind.PUT)
        if len(idx):
            sz = columns.size[idx]
            dist = index.dist[int(EventKind.PUT)]
            f0[idx] = put_send_cpu(sz)
            f1[idx] = p.put_msg_time * sz
            f2[idx] = network(sz, dist)
            f3[idx] = recv_flag_update(sz)
            f4[idx] = recv_theft(sz)

        # GET: f0 request wire, f1 reply service, f2 reply wire,
        # f3 target theft, f4 reply-arrival->recv-flag, f5 self theft.
        idx = idx_of(EventKind.GET)
        if len(idx):
            sz = columns.size[idx]
            dist = index.dist[int(EventKind.GET)]
            f0[idx] = network(0, dist)
            f1[idx] = get_reply_service(sz)
            f2[idx] = network(sz, dist)
            f3[idx] = get_reply_theft(sz)
            f4[idx] = recv_flag_update(sz)
            f5[idx] = recv_theft(sz)

        # SEND: f0 library+issue cpu, f1 dma drain, f2 wire,
        # f3 arrival->ready service, f4 receiver theft.
        idx = idx_of(EventKind.SEND)
        if len(idx):
            sz = columns.size[idx]
            dist = index.dist[int(EventKind.SEND)]
            f0[idx] = p.send_lib_time + put_send_cpu(sz)
            f1[idx] = p.put_msg_time * sz
            f2[idx] = network(sz, dist)
            f3[idx] = recv_service(sz)
            f4[idx] = recv_theft(sz)

        # RECV: f0 ring-buffer copy.
        idx = idx_of(EventKind.RECV)
        if len(idx):
            f0[idx] = p.recv_copy_byte_time * columns.size[idx]

        # BARRIER: f0 establishment time.
        idx = idx_of(EventKind.BARRIER)
        if len(idx):
            gs = columns.group_size[idx]
            establish = {s: r * p.group_barrier_step_time
                         for s, r in _log2_rounds(gs).items()}
            f0[idx] = [p.barrier_net_time if g == 0 else establish[s]
                       for g, s in zip(columns.group[idx].tolist(),
                                       gs.tolist())]

        # GOP: f0 duration == f1 member cpu share.
        idx = idx_of(EventKind.GOP)
        if len(idx):
            gs = columns.group_size[idx]
            dur = {s: r * p.gop_step_time
                   for s, r in _log2_rounds(gs).items()}
            vals = [dur[s] for s in gs.tolist()]
            f0[idx] = vals
            f1[idx] = vals

        # VGOP: f0 duration, f1 member cpu share
        # (MLSimEngine._reduction_duration, vectorized).
        idx = idx_of(EventKind.VGOP)
        if len(idx):
            sz = columns.size[idx]
            gs = columns.group_size[idx]
            flops = sz / 8.0
            exec_us = flops * SPARC_US_PER_FLOP * p.computation_factor
            copy_us = 0.0 if hw else p.recv_copy_byte_time * sz
            stage_setup = (p.send_lib_time + put_send_cpu(0)
                           + p.recv_lib_time)
            hop = network(0, 1)
            stages = 2 * np.maximum(gs - 1, 0)
            wire = 2.0 * sz * p.put_msg_time
            f0[idx] = stages * (stage_setup + hop) + wire + exec_us + copy_us
            f1[idx] = 2.0 * stage_setup + exec_us + copy_us

        # REMOTE_LOAD: f0 round trip (request wire + reply service +
        # reply wire).
        idx = idx_of(EventKind.REMOTE_LOAD)
        if len(idx):
            sz = columns.size[idx]
            dist = index.dist[int(EventKind.REMOTE_LOAD)]
            f0[idx] = (network(0, dist)
                       + get_reply_service(sz)
                       + network(sz, dist))

        # REMOTE_STORE: f0 receiver theft.
        idx = idx_of(EventKind.REMOTE_STORE)
        if len(idx):
            f0[idx] = recv_theft(columns.size[idx])

        # Slots no kind wrote stay identically zero; materialize those as
        # plain zero lists instead of round-tripping numpy zeros.
        zeros = None
        out = []
        for arr in (f0, f1, f2, f3, f4, f5):
            if arr.any():
                out.append(arr.tolist())
            else:
                if zeros is None:
                    zeros = [0.0] * total
                out.append(zeros)
        self.f0, self.f1, self.f2, self.f3, self.f4, self.f5 = out


def compile_program(columns: TraceColumns, params: MLSimParams,
                    topology: TorusTopology | None = None) -> _Program:
    """Precompute the operand lists for one (trace, params) pair."""
    return _Program(trace_index(columns, topology), params)


def _histogram(count: int, total: float, high: float,
               buckets: list[int]) -> Histogram:
    h = Histogram()
    h.count = count
    h.total = total
    h.max = high
    h._buckets = buckets
    return h


def replay_columns(columns: TraceColumns, params: MLSimParams,
                   topology: TorusTopology | None = None, *,
                   collect_metrics: bool = False,
                   program: _Program | None = None) -> MLSimResult:
    """Replay decoded trace columns under one parameter set.

    The scalar pass below is the reference engine's scheduling loop with
    every cost lookup replaced by a precomputed operand; see the module
    docstring for the equivalence argument.
    """
    n = columns.num_pes
    if topology is not None and topology.num_cells != n:
        raise SimulationError(
            f"topology has {topology.num_cells} cells but trace has "
            f"{n} PEs")
    p = params
    if program is None:
        program = compile_program(columns, p, topology)
    index = program.index
    ops = index.ops
    starts = index.starts
    i0, i1, i2, i3 = index.i0, index.i1, index.i2, index.i3
    f0, f1, f2, f3, f4, f5 = (program.f0, program.f1, program.f2,
                              program.f3, program.f4, program.f5)

    # Per-preset scalar constants (put_model functions of params only).
    hw = p.hardware_put_get
    dma_setup = p.put_dma_set_time if hw else 0.0
    send_flag_tail = p.send_complete_time + p.send_complete_flag_time
    send_theft = 0.0 if hw else p.send_complete_time
    get_send_cpu = p.put_prolog_time + p.put_enqueue_time
    if not hw:
        get_send_cpu += p.put_msg_post_time * 0
        get_send_cpu += p.put_dma_set_time
    get_send_cpu += p.put_epilog_time
    flag_prolog = p.flag_check_prolog_time
    flag_epilog = p.flag_check_epilog_time
    recv_lib = p.recv_lib_time
    barrier_lib = p.barrier_lib_time
    remote_access = p.remote_access_time
    creg_access = p.creg_access_time

    # Per-PE replay state (flat twins of _PEState).  Everything a visit
    # touches is packed into one list per PE — [cursor, clock, overhead,
    # attempted, execution, rtsys, idle] — so a context switch is one
    # unpack on entry and one slice-assign on exit instead of seven list
    # reads and writes (visits outnumber events on blocking-heavy
    # traces, so switch cost is a first-order term).  Stolen CPU time is
    # kept separate: communication handlers credit it cross-PE.
    ends = starts[1:]
    state = [[starts[pe], 0.0, 0.0, False, 0.0, 0.0, 0.0]
             for pe in range(n)]
    theft = [0.0] * n
    slot_of: list[int | None] = [None] * n

    # Shared registries — semantically the reference engine's, but laid
    # out for dict-op throughput: slots and channels are keyed by packed
    # integers instead of tuples, and barrier/reduction rendezvous keep a
    # running (count, max-arrival) pair instead of a per-PE arrival dict
    # (``max`` over floats is order-independent, so the release time is
    # bit-identical to ``max(arrivals.values())``).
    flag_times: dict[int, list[float]] = {}
    flag_waiters: dict[int, list[tuple[int, int]]] = {}
    ngroups = len(columns.group_sizes) or 1
    # Rendezvous state: generation counters are dense (pe * ngroups +
    # gid), so they live in flat lists; each active slot (gen * ngroups
    # + gid) keeps one mutable record [arrivals, max-arrival, release,
    # parked PEs], so an arrival costs a single dict probe instead of
    # one per component.
    bar_gens = [0] * (n * ngroups)
    red_gens = [0] * (n * ngroups)
    bar_slots: dict[int, list] = {}
    red_slots: dict[int, list] = {}
    ring_arrival: dict[int, float] = {}
    ring_waiters: dict[int, int] = {}
    chan_last: dict[int, tuple[float, float]] = {}  # src * n + dst
    runnable: deque[int] = deque(range(n))
    queued: set[int] = set(range(n))
    messages = 0
    bytes_on_wire = 0

    # Metric accumulators, inlined from engine._MetricsAccum: wait
    # histograms as flat counters (bucket index via frexp instead of
    # Histogram.observe's linear scan), link charges as dense arrays
    # indexed by the trace index's link-id plan.
    collect = collect_metrics
    frexp = math.frexp
    fw_count = 0
    fw_total = 0.0
    fw_max = 0.0
    fw_buckets = [0] * (_HIST_OVERFLOW + 1)
    bw_count = 0
    bw_total = 0.0
    bw_max = 0.0
    bw_buckets = [0] * (_HIST_OVERFLOW + 1)
    if collect:
        dma_busy = [0.0] * n
        plan = index.link_plan()
        nlinks = len(index.link_table)
        link_busy = [0.0] * nlinks
        link_bytes = [0] * nlinks
        link_frames = [0] * nlinks
    else:
        dma_busy = []
        plan = []
        link_busy = link_bytes = link_frames = []

    def record_flag(gid: int, t: float) -> None:
        if gid == 0:
            return
        times = flag_times.setdefault(gid, [])
        insort(times, t)
        waiters = flag_waiters.get(gid)
        if waiters:
            still = []
            for wpe, wtarget in waiters:
                if len(times) >= wtarget:
                    if wpe not in queued:
                        queued.add(wpe)
                        runnable.append(wpe)
                else:
                    still.append((wpe, wtarget))
            flag_waiters[gid] = still

    while runnable:
        pe = runnable.popleft()
        queued.discard(pe)
        st = state[pe]
        i, clk, over, att, bex, brt, bid = st
        end = ends[pe]
        th = theft[pe]
        while i < end:
            op = ops[i]
            if op == _COMPUTE:
                if th:
                    clk += th
                    over += th
                    th = 0.0
                clk += f0[i]
                bex += f0[i]
            elif op == _PUT:
                if th:
                    clk += th
                    over += th
                    th = 0.0
                clk += f0[i]
                over += f0[i]
                depart = clk + dma_setup
                sfl = i2[i]
                if sfl:
                    record_flag(sfl, depart + f1[i] + send_flag_tail)
                th += send_theft
                partner = i0[i]
                key = pe * n + partner
                raw = depart + f2[i]
                last = chan_last.get(key)
                if last is None:
                    arrival = max(raw, 0.0)
                    chan_last[key] = (depart, arrival)
                elif depart >= last[0]:
                    arrival = max(raw, last[1])
                    chan_last[key] = (depart, arrival)
                else:
                    arrival = raw
                rfl = i3[i]
                if rfl:
                    record_flag(rfl, arrival + f3[i])
                if partner == pe:
                    th += f4[i]
                else:
                    theft[partner] += f4[i]
                if collect:
                    dma_busy[pe] += f1[i]
                    wire = f2[i]
                    nb = i1[i]
                    for lid in plan[i]:
                        link_busy[lid] += wire
                        link_bytes[lid] += nb
                        link_frames[lid] += 1
                messages += 1
                bytes_on_wire += i1[i]
            elif op == _FLAG_WAIT:
                if not att:
                    if th:
                        clk += th
                        over += th
                        th = 0.0
                    clk += flag_prolog
                    over += flag_prolog
                    att = True
                target = i1[i]
                if target <= 0:
                    clk += flag_epilog
                    over += flag_epilog
                else:
                    times = flag_times.get(i0[i], ())
                    if len(times) < target:
                        flag_waiters.setdefault(i0[i], []).append(
                            (pe, target))
                        break
                    t = times[target - 1]
                    if collect:
                        w = max(t - clk, 0.0)
                        fw_count += 1
                        fw_total += w
                        if w > fw_max:
                            fw_max = w
                        if w <= 1.0:
                            fw_buckets[0] += 1
                        else:
                            m, e = frexp(w)
                            b = e - 1 if m == 0.5 else e
                            fw_buckets[b if b < _HIST_OVERFLOW
                                       else _HIST_OVERFLOW] += 1
                    if t > clk:
                        bid += t - clk
                        clk = t
                    clk += flag_epilog
                    over += flag_epilog
            elif op == _RTSYS:
                if th:
                    clk += th
                    over += th
                    th = 0.0
                clk += f0[i]
                brt += f0[i]
            elif op == _BARRIER:
                if not att:
                    if th:
                        clk += th
                        over += th
                        th = 0.0
                    clk += barrier_lib
                    over += barrier_lib
                    pk = pe * ngroups + i0[i]
                    gen = bar_gens[pk]
                    bar_gens[pk] = gen + 1
                    slot = gen * ngroups + i0[i]
                    rec = bar_slots.get(slot)
                    if rec is None:
                        rec = [1, clk, None, None]
                        bar_slots[slot] = rec
                    else:
                        rec[0] += 1
                        if clk > rec[1]:
                            rec[1] = clk
                    att = True
                    slot_of[pe] = slot
                    if rec[0] == i2[i]:
                        rec[2] = rec[1] + f0[i]
                        waiters = rec[3]
                        if waiters:
                            rec[3] = None
                            for waiter in waiters:
                                if waiter not in queued:
                                    queued.add(waiter)
                                    runnable.append(waiter)
                else:
                    rec = bar_slots[slot_of[pe]]
                release = rec[2]
                if release is None:
                    if rec[3] is None:
                        rec[3] = [pe]
                    else:
                        rec[3].append(pe)
                    break
                if collect:
                    w = max(release - clk, 0.0)
                    bw_count += 1
                    bw_total += w
                    if w > bw_max:
                        bw_max = w
                    if w <= 1.0:
                        bw_buckets[0] += 1
                    else:
                        m, e = frexp(w)
                        b = e - 1 if m == 0.5 else e
                        bw_buckets[b if b < _HIST_OVERFLOW
                                   else _HIST_OVERFLOW] += 1
                if release > clk:
                    bid += release - clk
                    clk = release
            elif op == _REDUCTION:
                size = i2[i]
                if not att:
                    if th:
                        clk += th
                        over += th
                        th = 0.0
                    pk = pe * ngroups + i0[i]
                    gen = red_gens[pk]
                    red_gens[pk] = gen + 1
                    slot = gen * ngroups + i0[i]
                    rec = red_slots.get(slot)
                    if rec is None:
                        rec = [1, clk, None, None]
                        red_slots[slot] = rec
                    else:
                        rec[0] += 1
                        if clk > rec[1]:
                            rec[1] = clk
                    att = True
                    slot_of[pe] = slot
                    if rec[0] == size:
                        rec[2] = rec[1] + f0[i]
                        waiters = rec[3]
                        if waiters:
                            rec[3] = None
                            for waiter in waiters:
                                if waiter not in queued:
                                    queued.add(waiter)
                                    runnable.append(waiter)
                else:
                    rec = red_slots[slot_of[pe]]
                release = rec[2]
                if release is None:
                    if rec[3] is None:
                        rec[3] = [pe]
                    else:
                        rec[3].append(pe)
                    break
                busy = min(f1[i], max(release - clk, 0.0))
                clk += busy
                over += busy
                if release > clk:
                    bid += release - clk
                    clk = release
                if i3[i]:  # VGOP ring traffic
                    messages += size - 1
                    bytes_on_wire += i1[i] * (size - 1)
            elif op == _GET:
                if th:
                    clk += th
                    over += th
                    th = 0.0
                clk += get_send_cpu
                over += get_send_cpu
                depart = clk + dma_setup
                sfl = i2[i]
                if sfl:
                    record_flag(sfl, depart + send_flag_tail)
                partner = i0[i]
                key = pe * n + partner
                raw = depart + f0[i]
                last = chan_last.get(key)
                if last is None:
                    req_arrival = max(raw, 0.0)
                    chan_last[key] = (depart, req_arrival)
                elif depart >= last[0]:
                    req_arrival = max(raw, last[1])
                    chan_last[key] = (depart, req_arrival)
                else:
                    req_arrival = raw
                reply_depart = req_arrival + f1[i]
                if partner == pe:
                    th += f3[i]
                else:
                    theft[partner] += f3[i]
                key = partner * n + pe
                raw = reply_depart + f2[i]
                last = chan_last.get(key)
                if last is None:
                    reply_arrival = max(raw, 0.0)
                    chan_last[key] = (reply_depart, reply_arrival)
                elif reply_depart >= last[0]:
                    reply_arrival = max(raw, last[1])
                    chan_last[key] = (reply_depart, reply_arrival)
                else:
                    reply_arrival = raw
                rfl = i3[i]
                if rfl:
                    record_flag(rfl, reply_arrival + f4[i])
                th += f5[i]
                if collect:
                    dma_busy[partner] += f1[i]
                    req_route, rep_route = plan[i]
                    wire = f0[i]
                    for lid in req_route:
                        link_busy[lid] += wire
                        link_frames[lid] += 1
                    wire = f2[i]
                    nb = i1[i]
                    for lid in rep_route:
                        link_busy[lid] += wire
                        link_bytes[lid] += nb
                        link_frames[lid] += 1
                messages += 2
                bytes_on_wire += i1[i]
            elif op == _SEND:
                if th:
                    clk += th
                    over += th
                    th = 0.0
                clk += f0[i]
                over += f0[i]
                depart = clk + dma_setup
                blocked = depart + f1[i] - clk
                if blocked > 0:
                    clk += blocked
                    over += blocked
                partner = i0[i]
                key = pe * n + partner
                raw = depart + f2[i]
                last = chan_last.get(key)
                if last is None:
                    arrival = max(raw, 0.0)
                    chan_last[key] = (depart, arrival)
                elif depart >= last[0]:
                    arrival = max(raw, last[1])
                    chan_last[key] = (depart, arrival)
                else:
                    arrival = raw
                ready = arrival + f3[i]
                if partner == pe:
                    th += f4[i]
                else:
                    theft[partner] += f4[i]
                if collect:
                    dma_busy[pe] += f1[i]
                    wire = f2[i]
                    nb = i1[i]
                    for lid in plan[i]:
                        link_busy[lid] += wire
                        link_bytes[lid] += nb
                        link_frames[lid] += 1
                msg = i2[i]
                ring_arrival[msg] = ready
                waiter = ring_waiters.pop(msg, None)
                if waiter is not None and waiter not in queued:
                    queued.add(waiter)
                    runnable.append(waiter)
                messages += 1
                bytes_on_wire += i1[i]
            elif op == _RECV:
                if not att:
                    if th:
                        clk += th
                        over += th
                        th = 0.0
                    clk += recv_lib
                    over += recv_lib
                    att = True
                ready = ring_arrival.get(i0[i])
                if ready is None:
                    ring_waiters[i0[i]] = pe
                    break
                if ready > clk:
                    bid += ready - clk
                    clk = ready
                clk += f0[i]
                over += f0[i]
            elif op == _REMOTE_LOAD:
                if th:
                    clk += th
                    over += th
                    th = 0.0
                clk += remote_access
                over += remote_access
                t = clk + f0[i]
                if t > clk:
                    bid += t - clk
                    clk = t
                messages += 2
            elif op == _REMOTE_STORE:
                if th:
                    clk += th
                    over += th
                    th = 0.0
                clk += remote_access
                over += remote_access
                partner = i0[i]
                if partner == pe:
                    th += f0[i]
                else:
                    theft[partner] += f0[i]
                messages += 1
                bytes_on_wire += i1[i]
            elif op == _CREG:
                if th:
                    clk += th
                    over += th
                    th = 0.0
                clk += creg_access
                over += creg_access
            elif op == _INSTANT or op == _PHASE:
                pass
            else:
                raise SimulationError(f"unknown opcode {op}")
            i += 1
            att = False
        st[:] = i, clk, over, att, bex, brt, bid
        theft[pe] = th

    unfinished = [pe for pe in range(n) if state[pe][0] < ends[pe]]
    if unfinished:
        raise SimulationError(
            f"replay deadlock: PEs {unfinished[:16]} parked forever "
            "(trace and timing model disagree)")

    per_pe = [PEBreakdown(execution=st[4], rtsys=st[5], overhead=st[2],
                          idle=st[6], clock=st[1])
              for st in state]
    result = MLSimResult(model_name=p.name, per_pe=per_pe,
                         messages=messages, bytes_on_wire=bytes_on_wire)
    if collect:
        elapsed = max((st[1] for st in state), default=0.0)
        lid_of = {pair: lid for lid, pair in enumerate(index.link_table)}
        links = {}
        for pair in sorted(lid_of):
            lid = lid_of[pair]
            busy = link_busy[lid]
            links[f"{pair[0]}->{pair[1]}"] = {
                "busy_us": busy,
                "bytes": link_bytes[lid],
                "frames": link_frames[lid],
                "utilization": busy / elapsed if elapsed else 0.0,
            }
        dma_max = max(dma_busy, default=0.0)
        result.metrics = {
            "schema": REPLAY_SCHEMA,
            "model": p.name,
            "elapsed_us": elapsed,
            "waits": {
                "flag_wait": _histogram(fw_count, fw_total, fw_max,
                                        fw_buckets).to_dict(),
                "barrier_wait": _histogram(bw_count, bw_total, bw_max,
                                           bw_buckets).to_dict(),
            },
            "dma": {
                "busy_us": list(dma_busy),
                "busy_us_max": dma_max,
                "busy_fraction_max": dma_max / elapsed if elapsed else 0.0,
            },
            "links": links,
            "links_max_utilization": max(
                (v["utilization"] for v in links.values()), default=0.0),
            "robustness": dict(index.instant_counts),
        }
    return result
