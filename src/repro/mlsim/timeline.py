"""Per-PE timelines: a span log of where simulated time went.

With ``record_timeline=True`` the engine logs one :class:`Span` per
contiguous stretch of busy or idle time, labelled with the trace event
that caused it — the simulator's equivalent of Figure 7's horizontal
bars, but for a whole run.  The text renderer draws an ASCII Gantt
chart; the spans themselves are plain data for ad-hoc analysis
(e.g. "what exactly is PE 3 waiting on between 400 us and 900 us?").
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Bucket names as used by the engine.
BUCKETS = ("execution", "rtsys", "overhead", "idle")


@dataclass(frozen=True)
class Span:
    """One contiguous accounted interval on one PE's clock."""

    pe: int
    start: float
    end: float
    bucket: str           # execution | rtsys | overhead | idle
    label: str            # event kind (and partner where meaningful)

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class Flow:
    """One packet's journey: source PE injection to destination arrival."""

    src: int
    depart: float
    dst: int
    arrival: float
    kind: str             # PUT | GET | GET-REPLY | SEND
    size: int             # payload bytes


@dataclass(frozen=True)
class Instant:
    """A zero-duration marker (RETRY / TIMEOUT / SPILL)."""

    pe: int
    t: float
    name: str


@dataclass(frozen=True)
class PhaseMark:
    """A user phase label from ``ctx.phase(...)``."""

    pe: int
    t: float
    label: str


@dataclass
class Timeline:
    """All spans of one replay, per PE."""

    num_pes: int
    _spans: list[list[Span]] = field(default_factory=list)
    flows: list[Flow] = field(default_factory=list)
    instants: list[Instant] = field(default_factory=list)
    phase_marks: list[PhaseMark] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self._spans:
            self._spans = [[] for _ in range(self.num_pes)]

    def add(self, span: Span) -> None:
        if span.duration > 0:
            self._spans[span.pe].append(span)

    def add_flow(self, flow: Flow) -> None:
        self.flows.append(flow)

    def add_instant(self, instant: Instant) -> None:
        self.instants.append(instant)

    def add_phase(self, mark: PhaseMark) -> None:
        self.phase_marks.append(mark)

    def spans_for(self, pe: int) -> list[Span]:
        return self._spans[pe]

    def busy_fraction(self, pe: int) -> float:
        spans = self._spans[pe]
        if not spans:
            return 0.0
        total = spans[-1].end
        busy = sum(s.duration for s in spans if s.bucket != "idle")
        return busy / total if total else 0.0

    def dominant_label(self, pe: int, bucket: str) -> str | None:
        """The label accounting for the most time in a bucket."""
        totals: dict[str, float] = {}
        for span in self._spans[pe]:
            if span.bucket == bucket:
                totals[span.label] = totals.get(span.label, 0.0) \
                    + span.duration
        if not totals:
            return None
        return max(totals, key=totals.get)

    def window(self, pe: int, start: float, end: float) -> list[Span]:
        """Spans overlapping [start, end) on one PE."""
        return [s for s in self._spans[pe]
                if s.end > start and s.start < end]


_GLYPHS = {"execution": "#", "rtsys": "r", "overhead": "o", "idle": "."}


def render_timeline(timeline: Timeline, *, width: int = 72,
                    pes: list[int] | None = None) -> str:
    """ASCII Gantt chart: one row per PE, time left to right."""
    pes = pes if pes is not None else list(range(timeline.num_pes))
    horizon = max((timeline.spans_for(pe)[-1].end
                   for pe in pes if timeline.spans_for(pe)), default=0.0)
    if horizon <= 0:
        return "(empty timeline)"
    scale = width / horizon
    lines = [f"timeline, 0 .. {horizon:.1f} us "
             f"(# exec, r rtsys, o overhead, . idle)"]
    for pe in pes:
        row = [" "] * width
        for span in timeline.spans_for(pe):
            a = min(int(span.start * scale), width - 1)
            b = min(max(int(span.end * scale), a + 1), width)
            glyph = _GLYPHS.get(span.bucket, "?")
            for i in range(a, b):
                row[i] = glyph
        lines.append(f"PE {pe:3d} |{''.join(row)}|")
    return "\n".join(lines)
