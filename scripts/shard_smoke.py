#!/usr/bin/env python
"""Byte-identity smoke check: sharded engine vs serial batched.

Runs each requested workload twice — serially and sharded — and
compares trace digests, memory digests, per-cell result digests and
``AppStatistics``.  Exits non-zero on the first mismatch.  Used by the
``shard-smoke`` CI job and handy for local bring-up:

    PYTHONPATH=src python scripts/shard_smoke.py --shards 2 EP MatMul
"""

from __future__ import annotations

import argparse
import os
import sys


def run_one(name: str, scheduler: str, shards: int, num_cells: int | None):
    os.environ["REPRO_MACHINE_SCHEDULER"] = scheduler
    os.environ["REPRO_MACHINE_SHARDS"] = str(shards)
    try:
        from repro.apps.workloads import workload

        kwargs = {}
        if num_cells is not None:
            kwargs["num_cells"] = num_cells
        return workload(name).run(**kwargs)
    finally:
        os.environ.pop("REPRO_MACHINE_SCHEDULER", None)
        os.environ.pop("REPRO_MACHINE_SHARDS", None)


def _shm_entries() -> set[str]:
    try:
        return set(os.listdir("/dev/shm"))
    except OSError:  # non-Linux: rely on live_segment_names alone
        return set()


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("apps", nargs="*", default=None)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--num-cells", type=int, default=None)
    args = parser.parse_args()
    apps = args.apps or ["EP", "MatMul"]

    from repro.faults.chaos import (
        memory_digest,
        results_digest,
        trace_digest,
    )
    from repro.machine.shardmem import live_segment_names

    shm_before = _shm_entries()
    failures = 0
    for name in apps:
        serial = run_one(name, "batched", 1, args.num_cells)
        sharded = run_one(name, "sharded", args.shards, args.num_cells)
        report = getattr(sharded.machine, "shard_report", None)
        if report is None:
            print(f"FAIL {name}: sharded run fell back to serial")
            failures += 1
            continue
        checks = {
            "verified": sharded.verified and serial.verified,
            "trace": (trace_digest(serial.trace)
                      == trace_digest(sharded.trace)),
            "memory": (memory_digest(serial.machine)
                       == memory_digest(sharded.machine)),
            "results": (results_digest(serial.results)
                        == results_digest(sharded.results)),
            "stats": serial.statistics == sharded.statistics,
        }
        bad = [k for k, ok in checks.items() if not ok]
        if bad:
            print(f"FAIL {name} (shards={args.shards}): {', '.join(bad)}")
            failures += 1
        else:
            print(f"ok   {name} (shards={args.shards}): byte-identical, "
                  f"{serial.trace.total_events} events")

    leaked = sorted(live_segment_names())
    new_shm = sorted(_shm_entries() - shm_before)
    if leaked or new_shm:
        print(f"FAIL shm leak: live={leaked} new_in_dev_shm={new_shm}")
        failures += 1
    else:
        print("ok   no shared-memory segments leaked")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
