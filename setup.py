"""Legacy setup shim: lets `python setup.py develop` work offline
(the sandbox has no `wheel` package, so PEP 517 editable installs fail)."""
from setuptools import setup

setup()
